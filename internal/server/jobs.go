package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Job states reported by GET /v1/jobs/{id}.
const (
	jobQueued   = "queued"
	jobRunning  = "running"
	jobDone     = "done"
	jobCanceled = "canceled"
)

// job is one async submission: a batch of queries executed off the request
// goroutine by the worker pool. All mutable fields are guarded by the
// owning jobQueue's mutex.
type job struct {
	id      string
	queries []batchQuery
	created time.Time
	ctx     context.Context
	cancel  context.CancelFunc

	state    string
	started  time.Time
	finished time.Time
	result   *batchResponse
}

// jobQueue runs submitted jobs on a fixed pool of workers (Config.MaxJobs).
// The pool bounds how many jobs execute at once; RR-set builds the jobs
// trigger still go through the index's shared build semaphore, so job
// workers and synchronous requests compete for the same build slots instead
// of multiplying them. Finished jobs are retained (up to retain) for
// GET /v1/jobs/{id} polling, oldest evicted first.
type jobQueue struct {
	run     func(ctx context.Context, queries []batchQuery) *batchResponse
	retain  int
	workers int

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finish order, for retention eviction
	queue    chan *job
	nextID   int64
	started  bool // worker pool spawned (lazily, on first submit)
	closed   bool
	wg       sync.WaitGroup
}

func newJobQueue(run func(context.Context, []batchQuery) *batchResponse, workers, queueCap, retain int) *jobQueue {
	// The worker goroutines are spawned on first submit, not here: a
	// Server used purely as an http.Handler that never sees /v1/jobs
	// traffic (and is never Closed) must not leak a pool per instance.
	return &jobQueue{
		run:     run,
		retain:  retain,
		workers: workers,
		jobs:    make(map[string]*job),
		queue:   make(chan *job, queueCap),
	}
}

func (q *jobQueue) worker() {
	defer q.wg.Done()
	for j := range q.queue {
		q.mu.Lock()
		if j.state != jobQueued { // canceled while waiting in the queue
			q.finishLocked(j, j.state)
			q.mu.Unlock()
			continue
		}
		j.state = jobRunning
		j.started = time.Now()
		q.mu.Unlock()

		res := q.run(j.ctx, j.queries)

		q.mu.Lock()
		j.result = res
		state := jobDone
		if j.ctx.Err() != nil {
			state = jobCanceled
		}
		q.finishLocked(j, state)
		q.mu.Unlock()
	}
}

// finishLocked records a job's terminal state and applies retention.
func (q *jobQueue) finishLocked(j *job, state string) {
	j.state = state
	j.finished = time.Now()
	j.cancel() // release the context's resources
	q.finished = append(q.finished, j.id)
	for q.retain > 0 && len(q.finished) > q.retain {
		victim := q.finished[0]
		q.finished = q.finished[1:]
		delete(q.jobs, victim) // may already be gone via DELETE; fine
	}
}

// Typed submit failures, so the handler can map each to its own HTTP
// status and error code.
var (
	errShuttingDown = fmt.Errorf("server is shutting down")
	errQueueFull    = fmt.Errorf("job queue is full")
)

// submit enqueues a new job and returns its status snapshot (taken under
// the same lock, so it cannot race with retention eviction or a fast
// worker). It fails when the queue is full (the pool can't keep up) or
// the server is shutting down.
func (q *jobQueue) submit(queries []batchQuery) (jobStatus, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return jobStatus{}, errShuttingDown
	}
	if !q.started {
		q.started = true
		for i := 0; i < q.workers; i++ {
			q.wg.Add(1)
			go q.worker()
		}
	}
	q.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      fmt.Sprintf("job-%d", q.nextID),
		queries: queries,
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		state:   jobQueued,
	}
	select {
	case q.queue <- j:
	default:
		cancel()
		return jobStatus{}, fmt.Errorf("%w (%d queued)", errQueueFull, cap(q.queue))
	}
	q.jobs[j.id] = j
	return j.statusLocked(false), nil
}

// get returns a snapshot of one job's status.
func (q *jobQueue) get(id string) (jobStatus, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return jobStatus{}, false
	}
	return j.statusLocked(true), true
}

// list returns status snapshots of every retained job, sorted by id.
func (q *jobQueue) list() []jobStatus {
	q.mu.Lock()
	out := make([]jobStatus, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, j.statusLocked(false))
	}
	q.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Created.Equal(b.Created) {
			return a.ID < b.ID
		}
		return a.Created.Before(b.Created)
	})
	return out
}

// remove implements DELETE /v1/jobs/{id}: cancel a queued or running job
// (it transitions to "canceled" when the worker observes the cancellation;
// a queued job is marked immediately), or discard a finished one.
func (q *jobQueue) remove(id string) (jobStatus, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return jobStatus{}, false
	}
	switch j.state {
	case jobQueued:
		// The worker will observe the state change when it pops the job.
		j.state = jobCanceled
		j.cancel()
	case jobRunning:
		// The running batch stops at its next query boundary.
		j.cancel()
	default: // done or canceled: discard the record
		delete(q.jobs, id)
	}
	return j.statusLocked(false), true
}

// close stops accepting jobs, cancels everything pending, and waits for
// the workers to drain.
func (q *jobQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	for _, j := range q.jobs {
		j.cancel()
	}
	close(q.queue)
	q.mu.Unlock()
	q.wg.Wait()
}

// jobStatus is the wire form of a job in /v1/jobs responses.
type jobStatus struct {
	ID      string    `json:"id"`
	State   string    `json:"state"`
	Queries int       `json:"queries"`
	Created time.Time `json:"created"`
	// WaitedMs is submission→start; RanMs is start→finish. Present once
	// the respective phase has completed.
	WaitedMs float64 `json:"waitedMs,omitempty"`
	RanMs    float64 `json:"ranMs,omitempty"`
	// Result carries the batch outcome once the job is done (or the
	// partial results of a canceled job). Omitted in list responses.
	Result *batchResponse `json:"result,omitempty"`
}

func (j *job) statusLocked(includeResult bool) jobStatus {
	st := jobStatus{
		ID:      j.id,
		State:   j.state,
		Queries: len(j.queries),
		Created: j.created,
	}
	if !j.started.IsZero() {
		st.WaitedMs = float64(j.started.Sub(j.created)) / float64(time.Millisecond)
		if !j.finished.IsZero() {
			st.RanMs = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	if includeResult {
		st.Result = j.result
	}
	return st
}

// --- handlers ---

// handleJobs dispatches /v1/jobs (POST submit, GET list).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req batchRequest
		if !s.decodeBodyLimit(w, r, &req, s.batchBodyLimit()) {
			return
		}
		if aerr := s.validateBatch(&req); aerr != nil {
			s.writeErr(w, aerr)
			return
		}
		st, err := s.jobs.submit(req.Queries)
		if err != nil {
			if errors.Is(err, errShuttingDown) {
				s.httpError(w, http.StatusServiceUnavailable, codeShuttingDown, err.Error())
			} else {
				s.httpError(w, http.StatusTooManyRequests, codeQueueFull, err.Error())
			}
			return
		}
		s.nJobs.Add(1)
		writeJSON(w, http.StatusAccepted, st)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
	default:
		s.methodNotAllowed(w, r, http.MethodPost, http.MethodGet)
	}
}

// handleJobByID dispatches /v1/jobs/{id} (GET poll, DELETE cancel/discard).
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		st, ok := s.jobs.get(id)
		if !ok {
			s.httpError(w, http.StatusNotFound, codeJobNotFound, fmt.Sprintf("unknown job %q", id))
			return
		}
		writeJSON(w, http.StatusOK, st)
	case http.MethodDelete:
		st, ok := s.jobs.remove(id)
		if !ok {
			s.httpError(w, http.StatusNotFound, codeJobNotFound, fmt.Sprintf("unknown job %q", id))
			return
		}
		writeJSON(w, http.StatusOK, st)
	default:
		s.methodNotAllowed(w, r, http.MethodGet, http.MethodDelete)
	}
}
