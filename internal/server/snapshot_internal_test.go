package server

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicKeepsOldContentOnFailure(t *testing.T) {
	// The rename is the commit point: a writer that dies (or errors) after
	// partially writing must leave the previous file byte-identical and no
	// temp debris behind — this is what makes a kill -9 mid-snapshot safe.
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.rrs")
	old := []byte("the old, complete snapshot")
	if err := writeFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(old)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("crashed mid-write")
	err := writeFileAtomic(path, func(w io.Writer) error {
		if _, werr := w.Write([]byte("half of the new sn")); werr != nil {
			return werr
		}
		return boom // the "kill": the temp file holds partial content
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != string(old) {
		t.Fatalf("old snapshot clobbered: %q", got)
	}
	des, _ := os.ReadDir(dir)
	if len(des) != 1 {
		names := make([]string, len(des))
		for i, de := range des {
			names[i] = de.Name()
		}
		t.Fatalf("temp debris left behind: %v", names)
	}
}

func TestSnapshotFileNameStable(t *testing.T) {
	// Entry files are content-addressed by cache key; the address must be
	// stable across processes (it is how DropGraph finds files to delete
	// and how a restart finds entries to restore).
	a, b := snapshotFileName("key-1"), snapshotFileName("key-1")
	if a != b {
		t.Fatalf("non-deterministic file name: %q vs %q", a, b)
	}
	if a == snapshotFileName("key-2") {
		t.Fatal("distinct keys mapped to one file")
	}
	if filepath.Base(a) != a {
		t.Fatalf("file name %q escapes the snapshot directory", a)
	}
}
