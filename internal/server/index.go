package server

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"comic/internal/graph"
	"comic/internal/rrset"
)

// Index is a concurrency-safe cache of RR-set collections, the core of the
// query-serving layer. Collections are keyed by everything that determines
// their content (graph, generator kind, GAP, opposite seeds, k, TIM budget,
// master seed — see rrset.CollectionRequest.Key), so a cached collection is
// byte-identical to what a fresh solve would generate and caching never
// changes query results, only their latency.
//
// Three mechanisms bound and deduplicate the work:
//
//   - hits return the resident collection without any generation;
//   - concurrent identical misses are collapsed singleflight-style — one
//     goroutine builds, the rest wait on the same result;
//   - resident collections are bounded by a byte budget with
//     least-recently-used eviction. Collections are arena-backed and
//     report their exact resident size (rrset.Collection.Bytes), so the
//     budget is a real bound, not an estimate.
//
// Beyond collections, the index memoizes one CELF seed ordering
// (rrset.SeedOrder) per resident collection: the full greedy order up to
// MaxOrderK, built on the first selection and answering every later k ≤
// MaxOrderK as an O(k) slice. It implements rrset.SeedSelector, so solvers
// that route selection through rrset.ObtainSeeds hit the memo
// transparently; results are byte-identical to a fresh SelectSeeds (CELF is
// prefix-stable), only the latency changes. Orders are byte-accounted
// against the same budget as their collections and evicted with them.
//
// An Index implements rrset.CollectionProvider and can be plugged into any
// solver via sandwich.Config.Collections (or comic.Options.Index).
type Index struct {
	maxBytes  int64
	maxOrderK int
	sem       chan struct{} // non-nil: bounds concurrent builds (SetBuildLimit)
	// recordPostings makes every build attach the per-set examination
	// index (rrset.Options.RecordPostings), enabling incremental repair
	// after graph edits (RepairGraph). On by default; SetRecordPostings
	// turns it off for memory-constrained deployments, at the cost of
	// every PATCH falling back to dropping the graph's collections.
	recordPostings bool

	// snapMu serializes snapshot-directory file operations (SaveSnapshot,
	// LoadSnapshot, the entry-file deletions of DropGraph). It is never
	// held while acquiring mu's critical sections' callees, and mu is never
	// held while acquiring snapMu — lock order is snapMu before mu.
	snapMu sync.Mutex

	mu          sync.Mutex
	bytes       int64
	orderBytes  int64                    // resident seed-order bytes, ⊆ bytes
	entries     map[string]*list.Element // key -> element whose Value is *indexEntry
	lru         *list.List               // front = most recently used
	inflight    map[string]*flight
	orderFlight map[string]*orderFlight
	snapDir     string // last SaveSnapshot/LoadSnapshot directory; "" = none
	stats       IndexStats
}

// indexEntry is one resident collection. It retains the graph the
// collection was drawn on: keys may embed the graph's pointer identity
// (empty GraphID), so the graph must stay reachable — and its address
// unrecyclable — for as long as the entry is resident.
type indexEntry struct {
	key     string
	graphID string // the request's GraphID; "" = keyed by graph pointer identity
	col     *rrset.Collection
	graph   *graph.Graph
	bytes   int64
	// order is the memoized seed ordering over col, nil until the first
	// selection (or a snapshot restore) computes it; orderBytes is its
	// exact footprint, included in Index.bytes while attached.
	order      *rrset.SeedOrder
	orderBytes int64
	// req is the request that built (or restored, via the snapshot
	// manifest's request record) the collection, with Graph/GraphID still
	// pointing at the generation it was drawn on. RepairGraph re-issues it
	// against the patched graph; nil means the entry cannot be repaired
	// (pre-upgrade snapshot) and is dropped on PATCH instead.
	req *rrset.CollectionRequest
}

// flight is one in-progress build that concurrent identical requests wait
// on. It carries the builder's graph so waiters get the same GraphID-reuse
// guard as the resident-entry hit path.
type flight struct {
	done  chan struct{}
	graph *graph.Graph
	col   *rrset.Collection
	err   error
}

// orderFlight is one in-progress seed-order build. Concurrent warm solves
// over the same collection wait on it instead of each running CELF.
type orderFlight struct {
	done  chan struct{}
	order *rrset.SeedOrder
}

// IndexStats is a point-in-time snapshot of cache behavior, served by
// /v1/stats.
type IndexStats struct {
	// Hits counts requests answered from a resident collection.
	Hits int64 `json:"hits"`
	// Misses counts requests that built a new collection.
	Misses int64 `json:"misses"`
	// DedupWaits counts requests that piggybacked on another request's
	// in-flight build instead of building their own copy.
	DedupWaits int64 `json:"dedupWaits"`
	// Evictions counts collections dropped to stay under the byte budget.
	Evictions int64 `json:"evictions"`
	// Drops counts collections removed because their graph was deleted
	// from the registry (DropGraph), as opposed to budget evictions.
	Drops int64 `json:"drops"`
	// Snapshots counts successful SaveSnapshot runs; SnapshotErrors counts
	// failed ones (the periodic snapshot loop surfaces failures here).
	Snapshots      int64 `json:"snapshots"`
	SnapshotErrors int64 `json:"snapshotErrors"`
	// Restores counts collections rehydrated by LoadSnapshot;
	// RestoreRejects counts snapshot entries it refused — corrupt,
	// truncated, wrong format version, keyed to an unknown or mismatched
	// graph, or beyond the byte budget. A rejected entry is skipped, never
	// served.
	Restores       int64 `json:"restores"`
	RestoreRejects int64 `json:"restoreRejects"`
	// OrderHits counts selections answered by a memoized seed ordering
	// (including waits on another request's in-progress ordering build);
	// OrderMisses counts selections that had to build one. Selections with
	// k above MaxOrderK bypass the memo and count in neither.
	OrderHits   int64 `json:"orderHits"`
	OrderMisses int64 `json:"orderMisses"`
	// OrderBytes is the resident memory of memoized seed orderings, a
	// subset of ResidentBytes.
	OrderBytes int64 `json:"orderBytes"`
	// Repairs counts collections migrated in place by RepairGraph after a
	// graph PATCH; RepairedSets counts the RR sets those repairs actually
	// regenerated (dirty + top-up — the work a full rebuild would have
	// multiplied by θ/regenerated). RepairFallbacks counts collections a
	// PATCH dropped instead — no postings index, dirtiness above the
	// threshold, or a failed repair — leaving the next query to rebuild.
	Repairs         int64 `json:"repairs"`
	RepairedSets    int64 `json:"repairedSets"`
	RepairFallbacks int64 `json:"repairFallbacks"`
	// RepairTime is the cumulative wall time RepairGraph spent repairing.
	RepairTime time.Duration `json:"repairTimeNs"`
	// ResidentCollections and ResidentBytes describe current occupancy.
	ResidentCollections int   `json:"residentCollections"`
	ResidentBytes       int64 `json:"residentBytes"`
	// MaxBytes is the configured budget (0 = unbounded).
	MaxBytes int64 `json:"maxBytes"`
	// BuildTime is the cumulative wall time spent generating collections
	// on misses.
	BuildTime time.Duration `json:"buildTimeNs"`
}

// DefaultMaxOrderK is the default depth of memoized seed orderings: large
// enough to cover every realistic k (the server's own MaxK default is 500)
// at a per-collection cost of ~12 bytes per position.
const DefaultMaxOrderK = 512

// NewIndex returns an empty index bounded to maxBytes of resident RR-set
// data (exact arena accounting). maxBytes <= 0 means unbounded.
func NewIndex(maxBytes int64) *Index {
	return &Index{
		maxBytes:       maxBytes,
		maxOrderK:      DefaultMaxOrderK,
		recordPostings: true,
		entries:        make(map[string]*list.Element),
		lru:            list.New(),
		inflight:       make(map[string]*flight),
		orderFlight:    make(map[string]*orderFlight),
	}
}

// SetRecordPostings controls whether builds attach the examination index
// that incremental repair needs (on by default). Like SetBuildLimit, call
// before the index is shared across goroutines.
func (x *Index) SetRecordPostings(on bool) { x.recordPostings = on }

// SetMaxOrderK sets how many positions of the CELF ordering are memoized
// per collection; selections with k beyond it fall back to a fresh CELF
// run. k <= 0 disables seed-order memoization entirely. Like
// SetBuildLimit, call before the index is shared across goroutines.
func (x *Index) SetMaxOrderK(k int) {
	if k < 0 {
		k = 0
	}
	x.maxOrderK = k
}

// Collection returns the collection for req, building it at most once per
// distinct key no matter how many goroutines ask concurrently. Errors are
// not cached; a later identical request retries the build.
func (x *Index) Collection(req rrset.CollectionRequest) (*rrset.Collection, error) {
	// Recording the examination index never changes the generated sets
	// (the flag is excluded from Key, like Workers); it is what makes the
	// collection repairable in place after a graph PATCH.
	if x.recordPostings {
		req.Opts.RecordPostings = true
	}
	key := req.Key()

	x.mu.Lock()
	if el, ok := x.entries[key]; ok {
		e := el.Value.(*indexEntry)
		if err := graphReuseError(e.graph, req); err != nil {
			x.mu.Unlock()
			return nil, err
		}
		x.lru.MoveToFront(el)
		x.stats.Hits++
		col := e.col
		x.mu.Unlock()
		return col, nil
	}
	if f, ok := x.inflight[key]; ok {
		// A waiter piggybacking on another request's build needs the same
		// misuse guard as a hit: the in-flight collection is being drawn on
		// the builder's graph, which must be the waiter's graph too.
		if err := graphReuseError(f.graph, req); err != nil {
			x.mu.Unlock()
			return nil, err
		}
		x.stats.DedupWaits++
		x.mu.Unlock()
		<-f.done
		return f.col, f.err
	}
	f := &flight{done: make(chan struct{}), graph: req.Graph}
	x.inflight[key] = f
	x.stats.Misses++
	x.mu.Unlock()

	if sem := x.sem; sem != nil {
		sem <- struct{}{}
		defer func() { <-sem }()
	}
	t0 := time.Now()
	col, err := buildSafely(req)
	f.col, f.err = col, err
	close(f.done)

	x.mu.Lock()
	delete(x.inflight, key)
	x.stats.BuildTime += time.Since(t0)
	if err == nil {
		x.insertLocked(key, col, &req)
	}
	x.mu.Unlock()
	return col, err
}

// SelectSeeds resolves req's collection and selects k seeds over a graph of
// n nodes, answering from the memoized CELF ordering when one is resident
// and building (at most once per collection, singleflight) when not. It
// implements rrset.SeedSelector; solvers reach it through
// rrset.ObtainSeeds. Results are byte-identical to Collection followed by
// rrset.SelectSeeds — CELF orderings are prefix-stable, and any order that
// does not exactly match the collection is discarded, never served.
//
// The returned Stats' SelectDuration covers the whole selection path: the
// O(k) slice on an order hit, or the full ordering build on a miss.
func (x *Index) SelectSeeds(req rrset.CollectionRequest, n, k int) ([]int32, *rrset.Stats, error) {
	col, err := x.Collection(req)
	if err != nil {
		return nil, nil, err
	}
	kk := k
	if kk > n {
		kk = n
	}
	if kk < 0 || kk > x.maxOrderK {
		// Beyond the memoized depth (or memoization disabled): select
		// fresh. No order counters move — this path never consulted the
		// memo.
		seeds, st := rrset.SelectSeeds(col, n, k)
		return seeds, st, nil
	}
	t0 := time.Now()
	o := x.seedOrder(req.Key(), col, n)
	if seeds, st, ok := rrset.SelectFromOrder(col, o, n, k); ok {
		st.SelectDuration = time.Since(t0)
		return seeds, st, nil
	}
	// The order did not apply (build panicked, or a concurrent builder's
	// collection was evicted and rebuilt under our feet). Correctness over
	// latency: select fresh.
	seeds, st := rrset.SelectSeeds(col, n, k)
	return seeds, st, nil
}

// seedOrder returns the memoized ordering for the collection cached under
// key, building it singleflight when absent. The result may be nil (build
// panic) or may not match col (rebuilt entry); the caller validates via
// SelectFromOrder.
func (x *Index) seedOrder(key string, col *rrset.Collection, n int) *rrset.SeedOrder {
	maxK := x.maxOrderK
	if maxK > n {
		maxK = n
	}
	x.mu.Lock()
	if el, ok := x.entries[key]; ok {
		e := el.Value.(*indexEntry)
		if e.col == col && e.order != nil && e.order.N() == n && e.order.MaxK() >= maxK {
			x.stats.OrderHits++
			o := e.order
			x.mu.Unlock()
			return o
		}
	}
	if f, ok := x.orderFlight[key]; ok {
		// Piggybacking on another request's ordering build is a hit: the
		// CELF work runs once, everyone slices it.
		x.stats.OrderHits++
		x.mu.Unlock()
		<-f.done
		return f.order
	}
	f := &orderFlight{done: make(chan struct{})}
	x.orderFlight[key] = f
	x.stats.OrderMisses++
	x.mu.Unlock()

	o := buildOrderSafely(col, n, maxK)
	f.order = o
	close(f.done)

	x.mu.Lock()
	delete(x.orderFlight, key)
	if o != nil {
		x.attachOrderLocked(key, col, o)
	}
	x.mu.Unlock()
	return o
}

// attachOrderLocked memoizes o on the resident entry for key, provided the
// entry still holds the exact collection the order was computed over — the
// entry may have been evicted and rebuilt while CELF ran, and an order must
// never outlive its collection. Replaces a shallower order (a snapshot
// restored under a smaller MaxOrderK), keeps a deeper one.
func (x *Index) attachOrderLocked(key string, col *rrset.Collection, o *rrset.SeedOrder) {
	el, ok := x.entries[key]
	if !ok {
		return
	}
	e := el.Value.(*indexEntry)
	if e.col != col {
		return
	}
	if e.order != nil && e.order.MaxK() >= o.MaxK() {
		return
	}
	x.bytes -= e.orderBytes
	x.orderBytes -= e.orderBytes
	e.order = o
	e.orderBytes = o.Bytes()
	x.bytes += e.orderBytes
	x.orderBytes += e.orderBytes
	x.evictOverBudgetLocked()
}

// buildOrderSafely converts a panicking ordering build into a nil order so
// the flight always resolves (see buildSafely); the caller then falls back
// to a fresh selection, which surfaces the defect on its own terms.
func buildOrderSafely(col *rrset.Collection, n, maxK int) (o *rrset.SeedOrder) {
	defer func() { recover() }()
	return rrset.BuildSeedOrder(col, n, maxK)
}

// graphReuseError reports whether serving a collection drawn on `cached`
// for req would cross graphs. Sharing across Graph instances is legitimate
// (same logical graph reloaded under one GraphID), but a GraphID reused for
// a *different* graph would silently serve wrong RR sets. Same logical
// graph implies same size; different size proves misuse, so fail loudly.
func graphReuseError(cached *graph.Graph, req rrset.CollectionRequest) error {
	if cached == req.Graph {
		return nil
	}
	if cached == nil || req.Graph == nil {
		return fmt.Errorf("server: GraphID %q reused across a nil and a non-nil graph", req.GraphID)
	}
	if cached.N() != req.Graph.N() || cached.M() != req.Graph.M() {
		return fmt.Errorf("server: GraphID %q reused for a different graph (%d nodes/%d edges cached vs %d/%d requested)",
			req.GraphID, cached.N(), cached.M(), req.Graph.N(), req.Graph.M())
	}
	return nil
}

// ErrBuildPanic wraps a panic recovered from an RR-set collection build.
// Handlers map it to 500: it marks a server-side defect, not a bad request.
var ErrBuildPanic = errors.New("server: RR-set collection build panicked")

// buildSafely converts a panicking build into an error. Without this a
// panic would unwind past the close(f.done) above, leaving a poisoned
// flight registered forever: every later identical request would block on
// its done channel.
func buildSafely(req rrset.CollectionRequest) (col *rrset.Collection, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrBuildPanic, r)
		}
	}()
	return req.Build()
}

// insertLocked adds a built collection and evicts from the cold end until
// the budget holds again. The newest collection is never evicted, so a
// single collection larger than the whole budget still serves its own
// request (and becomes the next eviction victim). The request is retained
// on the entry so RepairGraph can re-issue it after a graph PATCH.
func (x *Index) insertLocked(key string, col *rrset.Collection, req *rrset.CollectionRequest) {
	if _, ok := x.entries[key]; ok {
		return // a racing build of the same key already landed
	}
	e := &indexEntry{key: key, graphID: req.GraphID, col: col, graph: req.Graph, bytes: col.Bytes(), req: req}
	x.entries[key] = x.lru.PushFront(e)
	x.bytes += e.bytes
	x.evictOverBudgetLocked()
}

// evictOverBudgetLocked evicts from the cold end until the budget holds
// again, releasing each victim's collection and any attached seed order.
func (x *Index) evictOverBudgetLocked() {
	for x.maxBytes > 0 && x.bytes > x.maxBytes && x.lru.Len() > 1 {
		back := x.lru.Back()
		victim := back.Value.(*indexEntry)
		x.lru.Remove(back)
		delete(x.entries, victim.key)
		x.bytes -= victim.bytes + victim.orderBytes
		x.orderBytes -= victim.orderBytes
		x.stats.Evictions++
	}
}

// DropGraph removes every resident collection drawn on g and returns how
// many were dropped. The graph registry calls it when a graph is deleted —
// once no solve holds a reference to the graph — so a deleted graph's
// cache entries stop pinning its memory. Matching is by graph identity:
// collections record the *graph.Graph they were generated on regardless of
// how their key was formed.
//
// When the index has a snapshot directory (SaveSnapshot/LoadSnapshot has
// run), the dropped entries' on-disk snapshot files are deleted too: a
// deleted graph's RR sets must not survive on disk and reappear after a
// restart. Entry files for collections of g that were budget-evicted
// before the drop are pruned by the next SaveSnapshot instead — and even
// unpruned, a restart cannot restore them, because the registry deletes
// the graph's persisted identity (its cache ID) along with the graph.
//
// Safe to call concurrently with Collection. An identical-key request
// in flight while DropGraph runs may still insert its result afterwards;
// the registry prevents that by dropping only after the last in-flight
// solve on the graph has released its reference (inserts happen inside a
// solve, before the release).
func (x *Index) DropGraph(g *graph.Graph) int {
	x.mu.Lock()
	dropped := 0
	var files []string
	//comic:unordered every matching entry is dropped and each file removed independently; order is immaterial
	for key, el := range x.entries {
		e := el.Value.(*indexEntry)
		if e.graph == g {
			x.lru.Remove(el)
			delete(x.entries, key)
			x.bytes -= e.bytes + e.orderBytes
			x.orderBytes -= e.orderBytes
			dropped++
			if x.snapDir != "" && e.graphID != "" {
				files = append(files, filepath.Join(x.snapDir, snapshotFileName(key)))
			}
		}
	}
	x.stats.Drops += int64(dropped)
	x.mu.Unlock()
	if len(files) > 0 {
		x.snapMu.Lock()
		for _, f := range files {
			//comic:allow lockorder snapMu exists to serialize snapshot I/O; the hot path takes mu, never snapMu
			os.Remove(f) //comic:allow errlost best-effort; LoadSnapshot tolerates strays
		}
		x.snapMu.Unlock()
	}
	return dropped
}

// RepairSummary reports what one RepairGraph migration did, surfaced in
// the PATCH /v1/graphs/{name}/edges response.
type RepairSummary struct {
	// Collections counts the resident collections drawn on the patched
	// graph's previous generation; Repaired of them were migrated in
	// place, Fallbacks were dropped (the next query rebuilds cold).
	Collections int `json:"collections"`
	Repaired    int `json:"repaired"`
	Fallbacks   int `json:"fallbacks"`
	// ReusedSets counts RR sets carried over verbatim across all repairs;
	// RepairedSets counts the ones regenerated (dirty + top-up).
	ReusedSets   int `json:"reusedSets"`
	RepairedSets int `json:"repairedSets"`
}

// RepairGraph migrates every resident collection drawn on old onto the
// patched graph: each is repaired incrementally (rrset.Repair) — bitwise
// identical to a cold rebuild on the patched graph, but regenerating only
// the RR sets the update batch dirtied — and re-keyed under newID, the
// patched generation's GraphID. Collections that cannot be repaired (no
// postings index, no retained request, dirtiness above maxDirtyFrac, or a
// failed repair) are dropped; the next query rebuilds them cold.
//
// The caller (the PATCH path) must keep the old generation referenced in
// the registry while this runs, so a concurrent delete cannot drop
// entries out from under the repair loop. Old-generation entries inserted
// concurrently by in-flight solves are not migrated; they drain when the
// old version's last reference is released.
func (x *Index) RepairGraph(old, patched *graph.Graph, newID string, delta *graph.Delta, maxDirtyFrac float64) RepairSummary {
	x.mu.Lock()
	type cand struct {
		key string
		e   *indexEntry
	}
	var cands []cand
	//comic:unordered candidates are sorted by key right below
	for key, el := range x.entries {
		e := el.Value.(*indexEntry)
		if e.graph == old {
			cands = append(cands, cand{key, e})
		}
	}
	x.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })

	// Repair outside the lock — this is θ-scaled work. Collections are
	// immutable, so concurrent hits on the old entries are safe.
	type migration struct {
		oldKey string
		oldE   *indexEntry
		req    *rrset.CollectionRequest
		col    *rrset.Collection
	}
	var sum RepairSummary
	sum.Collections = len(cands)
	var migs []migration
	var drops []cand
	t0 := time.Now()
	for _, c := range cands {
		if c.e.req == nil {
			drops = append(drops, c)
			sum.Fallbacks++
			continue
		}
		req := *c.e.req
		req.Graph = patched
		req.GraphID = newID
		req.Opts.RecordPostings = true
		col, rst, err := repairSafely(c.e.col, req, delta, maxDirtyFrac)
		if err != nil || col == nil {
			drops = append(drops, c)
			sum.Fallbacks++
			continue
		}
		sum.Repaired++
		sum.ReusedSets += rst.Reused
		sum.RepairedSets += rst.Regenerated + rst.TopUp
		migs = append(migs, migration{oldKey: c.key, oldE: c.e, req: &req, col: col})
	}
	repairTime := time.Since(t0)

	x.mu.Lock()
	// removeIfCurrent unlinks the entry under key provided it is still the
	// exact entry the repair loop saw — it may have been evicted (gone) or
	// evicted-and-rebuilt (a different entry) meanwhile.
	var files []string
	removeIfCurrent := func(key string, e *indexEntry) {
		el, ok := x.entries[key]
		if !ok || el.Value.(*indexEntry) != e {
			return
		}
		x.lru.Remove(el)
		delete(x.entries, key)
		x.bytes -= e.bytes + e.orderBytes
		x.orderBytes -= e.orderBytes
		if x.snapDir != "" && e.graphID != "" {
			files = append(files, filepath.Join(x.snapDir, snapshotFileName(key)))
		}
	}
	for _, d := range drops {
		removeIfCurrent(d.key, d.e)
	}
	for _, m := range migs {
		removeIfCurrent(m.oldKey, m.oldE)
		// The memoized seed ordering belonged to the old collection; the
		// repaired one starts without and rebuilds it on first selection.
		x.insertLocked(m.req.Key(), m.col, m.req)
	}
	x.stats.Repairs += int64(sum.Repaired)
	x.stats.RepairedSets += int64(sum.RepairedSets)
	x.stats.RepairFallbacks += int64(sum.Fallbacks)
	x.stats.RepairTime += repairTime
	x.mu.Unlock()

	// The dead generation's snapshot entry files must not linger: a
	// restart cannot restore them (their GraphID is gone), but pruning now
	// keeps the state directory from accumulating one stale file per
	// patched collection until the next SaveSnapshot.
	if len(files) > 0 {
		x.snapMu.Lock()
		for _, f := range files {
			//comic:allow lockorder snapMu exists to serialize snapshot I/O; the hot path takes mu, never snapMu
			os.Remove(f) //comic:allow errlost best-effort; LoadSnapshot tolerates strays
		}
		x.snapMu.Unlock()
	}
	return sum
}

// repairSafely converts a panicking repair into an error so a defective
// collection falls back to a drop-and-rebuild instead of killing the
// PATCH request.
func repairSafely(old *rrset.Collection, req rrset.CollectionRequest, delta *graph.Delta, maxDirtyFrac float64) (col *rrset.Collection, rst *rrset.RepairStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			col, rst, err = nil, nil, fmt.Errorf("%w: %v", ErrBuildPanic, r)
		}
	}()
	return rrset.Repair(old, req, delta, maxDirtyFrac)
}

// SetBuildLimit bounds the number of collection builds that may run
// concurrently; n <= 0 removes the bound. The byte budget only covers
// resident collections — each in-flight build can hold up to θ RR sets
// before the budget ever sees them, so distinct concurrent queries (cache
// keys include client-controlled fields) are otherwise an unbounded
// memory and CPU vector. Call before the index is shared across
// goroutines; the setting itself is not synchronized.
func (x *Index) SetBuildLimit(n int) {
	if n <= 0 {
		x.sem = nil
		return
	}
	x.sem = make(chan struct{}, n)
}

// Stats returns a snapshot of the cache counters and occupancy.
func (x *Index) Stats() IndexStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	st := x.stats
	st.ResidentCollections = x.lru.Len()
	st.ResidentBytes = x.bytes
	st.OrderBytes = x.orderBytes
	st.MaxBytes = x.maxBytes
	return st
}

// Len reports the number of resident collections.
func (x *Index) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.lru.Len()
}
