package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"comic"
	"comic/internal/server"
)

// regimeSolveResp is solveResp plus the plan the planner attached.
type regimeSolveResp struct {
	Seeds     []int32 `json:"seeds"`
	Objective float64 `json:"objective"`
	Chosen    string  `json:"chosen"`
	Plan      struct {
		Regime    string `json:"regime"`
		Algorithm string `json:"algorithm"`
		Guarantee string `json:"guarantee"`
		Reason    string `json:"reason"`
	} `json:"plan"`
}

// competitiveEdgeList is a 12-node two-community graph small enough for
// fast greedy solves in tests.
func competitiveEdgeList() string {
	var sb strings.Builder
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {4, 5},
		{6, 7}, {7, 8}, {8, 9}, {9, 6}, {6, 10}, {10, 11}, {5, 6},
	}
	fmt.Fprintf(&sb, "12 %d\n", len(edges))
	for _, e := range edges {
		fmt.Fprintf(&sb, "%d %d 0.7\n", e[0], e[1])
	}
	return sb.String()
}

const competitiveGAP = `{"qa0":0.8,"qab":0.2,"qb0":0.7,"qba":0.1}`

// TestCompetitiveUploadAndSolveEndToEnd is the acceptance scenario: a
// competitive-GAP graph uploaded through /v1/graphs is solved end-to-end by
// /v1/selfinfmax and /v1/compinfmax, with the responses naming regime and
// algorithm, and the registry reporting the regime from upload onward.
func TestCompetitiveUploadAndSolveEndToEnd(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)

	upload := fmt.Sprintf(`{"name":"rivals","gap":%s,"edgeList":%q}`, competitiveGAP, competitiveEdgeList())
	var created struct {
		Name   string `json:"name"`
		Regime string `json:"regime"`
	}
	if rec := do(t, s, http.MethodPost, "/v1/graphs", upload, &created); rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d %q", rec.Code, rec.Body.String())
	}
	if created.Regime != "competition" {
		t.Fatalf("upload response regime = %q, want competition", created.Regime)
	}
	var got struct {
		Regime string `json:"regime"`
	}
	if rec := do(t, s, http.MethodGet, "/v1/graphs/rivals", "", &got); rec.Code != http.StatusOK {
		t.Fatalf("GET graph = %d", rec.Code)
	}
	if got.Regime != "competition" {
		t.Fatalf("GET /v1/graphs/rivals regime = %q, want competition", got.Regime)
	}

	var self regimeSolveResp
	body := `{"dataset":"rivals","k":3,"seedsB":[6],"evalRuns":400,"greedyRuns":150,"seed":7}`
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", body, &self); rec.Code != http.StatusOK {
		t.Fatalf("competitive selfinfmax = %d %q", rec.Code, rec.Body.String())
	}
	if len(self.Seeds) != 3 || self.Chosen != "greedy" {
		t.Fatalf("competitive solve result %+v", self)
	}
	if self.Plan.Regime != "competition" || self.Plan.Algorithm != "mc-greedy" ||
		self.Plan.Guarantee == "" || self.Plan.Reason == "" {
		t.Fatalf("competitive solve plan %+v", self.Plan)
	}

	var compR regimeSolveResp
	body = `{"dataset":"rivals","k":2,"seedsA":[0],"evalRuns":400,"greedyRuns":150,"seed":7}`
	if rec := do(t, s, http.MethodPost, "/v1/compinfmax", body, &compR); rec.Code != http.StatusOK {
		t.Fatalf("competitive compinfmax = %d %q", rec.Code, rec.Body.String())
	}
	if compR.Plan.Algorithm != "mc-greedy" || len(compR.Seeds) != 2 {
		t.Fatalf("competitive compinfmax result %+v", compR)
	}

	// Q+ responses carry a plan too.
	var qplus regimeSolveResp
	body = `{"dataset":"Flixster","k":2,"fixedTheta":500,"evalRuns":200,"seed":7}`
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", body, &qplus); rec.Code != http.StatusOK {
		t.Fatalf("Q+ solve = %d %q", rec.Code, rec.Body.String())
	}
	if qplus.Plan.Regime != "qplus" || qplus.Plan.Algorithm != "sandwich" {
		t.Fatalf("Q+ plan %+v", qplus.Plan)
	}

	// Per-regime counters on /v1/stats: two competitive solves, one Q+.
	var stats struct {
		Regimes  map[string]int64 `json:"regimes"`
		Datasets []struct {
			Name   string `json:"name"`
			Regime string `json:"regime"`
		} `json:"datasets"`
	}
	if rec := do(t, s, http.MethodGet, "/v1/stats", "", &stats); rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	if stats.Regimes["competition"] != 2 || stats.Regimes["qplus"] != 1 {
		t.Fatalf("regime counters %v, want competition=2 qplus=1", stats.Regimes)
	}
	if len(stats.Regimes) != 6 {
		t.Fatalf("stats must list all six regimes, got %v", stats.Regimes)
	}
	regimes := map[string]string{}
	for _, d := range stats.Datasets {
		regimes[d.Name] = d.Regime
	}
	if regimes["rivals"] != "competition" || regimes["Flixster"] != "qplus" {
		t.Fatalf("inventory regimes %v", regimes)
	}
}

// TestCompetitiveBatchJobSingleParity pins the new-traffic determinism
// contract under -race: a competitive solve submitted synchronously, inside
// a /v1/batch, and through /v1/jobs returns bit-identical seeds, objective
// and plan.
func TestCompetitiveBatchJobSingleParity(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)
	upload := fmt.Sprintf(`{"name":"rivals","gap":%s,"edgeList":%q}`, competitiveGAP, competitiveEdgeList())
	if rec := do(t, s, http.MethodPost, "/v1/graphs", upload, nil); rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d %q", rec.Code, rec.Body.String())
	}
	query := `{"dataset":"rivals","k":3,"seedsB":[6],"evalRuns":300,"greedyRuns":100,"seed":11}`

	var direct regimeSolveResp
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", query, &direct); rec.Code != http.StatusOK {
		t.Fatalf("direct solve = %d %q", rec.Code, rec.Body.String())
	}

	wrapped := fmt.Sprintf(`{"queries":[{"op":"selfinfmax",%s]}`, query[1:])
	var batch batchResp
	if rec := do(t, s, http.MethodPost, "/v1/batch", wrapped, &batch); rec.Code != http.StatusOK {
		t.Fatalf("batch = %d %q", rec.Code, rec.Body.String())
	}
	var fromBatch regimeSolveResp
	if err := json.Unmarshal(batch.Results[0].Result, &fromBatch); err != nil {
		t.Fatal(err)
	}

	var submitted jobStatusResp
	if rec := do(t, s, http.MethodPost, "/v1/jobs", wrapped, &submitted); rec.Code != http.StatusAccepted {
		t.Fatalf("job submit = %d %q", rec.Code, rec.Body.String())
	}
	finished := pollJob(t, s, submitted.ID)
	if finished.State != "done" || finished.Result == nil || finished.Result.Succeeded != 1 {
		t.Fatalf("job outcome = %+v", finished)
	}
	var fromJob regimeSolveResp
	if err := json.Unmarshal(finished.Result.Results[0].Result, &fromJob); err != nil {
		t.Fatal(err)
	}

	for name, got := range map[string]regimeSolveResp{"batch": fromBatch, "job": fromJob} {
		if !reflect.DeepEqual(got, direct) {
			t.Fatalf("%s competitive solve %+v != direct %+v", name, got, direct)
		}
	}
}

// TestUnsupportedRegimeMaps400 covers the operator-disabled fallback: with
// MaxGreedyNodes < 0, a regime only the greedy can serve is rejected with
// 400 and the error names the regime.
func TestUnsupportedRegimeMaps400(t *testing.T) {
	s, err := server.New(server.Config{
		Datasets:       map[string]*comic.Dataset{"Flixster": testDataset(t)},
		MaxGreedyNodes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	body := fmt.Sprintf(`{"dataset":"Flixster","k":2,"gap":%s,"evalRuns":100}`, competitiveGAP)
	rec := do(t, s, http.MethodPost, "/v1/selfinfmax", body, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unsupported regime = %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
	e := decodeEnvelope(t, rec)
	if !strings.Contains(e.Message, `"competition"`) {
		t.Fatalf("error %q must name the regime", rec.Body.String())
	}
	if e.Code != "unsupported_regime" {
		t.Fatalf("code = %q, want unsupported_regime", e.Code)
	}
	// Q+ traffic is unaffected by the disabled fallback.
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax",
		`{"dataset":"Flixster","k":2,"fixedTheta":500,"evalRuns":100}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("Q+ solve with disabled greedy = %d (%s)", rec.Code, rec.Body.String())
	}
}
