package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"comic"
	"comic/internal/server"
)

// batchResp mirrors the /v1/batch response body in tests.
type batchResp struct {
	Results []struct {
		Op     string          `json:"op"`
		Status int             `json:"status"`
		Error  *errBody        `json:"error"`
		Result json.RawMessage `json:"result"`
	} `json:"results"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
}

// bIndifferentGAP is the Flixster GAP with q_{B|∅} raised to q_{B|A}: B is
// indifferent to A, so a SelfInfMax solve needs exactly one RR-set
// collection (the exact path) instead of the lower/upper sandwich pair —
// which is what lets the k-sweep tests pin "exactly 1 build".
const bIndifferentGAP = `{"qa0":0.88,"qab":0.92,"qb0":0.96,"qba":0.96}`

// TestBatchKSweepSingleBuild is the tentpole's amortization contract: a
// k=1..10 sweep over one (graph, GAP, opposite, fixed θ, seed)
// configuration performs exactly one collection build — the other nine
// queries are warm selections over the shared collection.
func TestBatchKSweepSingleBuild(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)

	var queries []string
	for k := 1; k <= 10; k++ {
		queries = append(queries, fmt.Sprintf(
			`{"op":"selfinfmax","dataset":"Flixster","gap":%s,"k":%d,"seedsB":[1,2],"fixedTheta":2000,"evalRuns":200,"seed":7}`,
			bIndifferentGAP, k))
	}
	body := fmt.Sprintf(`{"queries":[%s]}`, strings.Join(queries, ","))

	var got batchResp
	if rec := do(t, s, http.MethodPost, "/v1/batch", body, &got); rec.Code != http.StatusOK {
		t.Fatalf("batch = %d %q", rec.Code, rec.Body.String())
	}
	if got.Succeeded != 10 || got.Failed != 0 {
		t.Fatalf("batch outcome = %d ok / %d failed", got.Succeeded, got.Failed)
	}
	st := s.Index().Stats()
	if st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("k-sweep of 10 = %d builds / %d hits, want exactly 1 / 9 (%+v)", st.Misses, st.Hits, st)
	}

	// Each k's seeds must be the same prefix-free greedy result the
	// dedicated endpoint computes; spot-check k=10 against /v1/selfinfmax.
	var single solveResp
	singleBody := "{" + strings.TrimPrefix(queries[9], `{"op":"selfinfmax",`)
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", singleBody, nil); rec.Code != http.StatusOK {
		t.Fatalf("single solve = %d %q", rec.Code, rec.Body.String())
	} else if err := json.Unmarshal(rec.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}
	var fromBatch solveResp
	if err := json.Unmarshal(got.Results[9].Result, &fromBatch); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single.Seeds, fromBatch.Seeds) || single.Objective != fromBatch.Objective {
		t.Fatalf("batch k=10 (%v, %v) != single request (%v, %v)",
			fromBatch.Seeds, fromBatch.Objective, single.Seeds, single.Objective)
	}
}

// TestBatchMixedOpsAndErrors pins per-query error isolation: one bad query
// reports its own error and status without failing the batch.
func TestBatchMixedOpsAndErrors(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)
	body := `{"queries":[
		{"op":"spread","dataset":"Flixster","seedsA":[0,1],"runs":300,"seed":7},
		{"op":"spread","dataset":"nope"},
		{"op":"boost","dataset":"Flixster","seedsA":[0],"seedsB":[1],"runs":300},
		{"op":"boost","dataset":"Flixster","seedsA":[0]},
		{"op":"selfinfmax","dataset":"Flixster","k":0},
		{"op":"selfinfmax","dataset":"Flixster","k":2,"runs":5},
		{"op":"spread","dataset":"Flixster","k":3},
		{"op":"frobnicate","dataset":"Flixster"},
		{"dataset":"Flixster"},
		{"op":"compinfmax","dataset":"Flixster","k":2,"seedsA":[0],"fixedTheta":500,"evalRuns":100}
	]}`
	var got batchResp
	if rec := do(t, s, http.MethodPost, "/v1/batch", body, &got); rec.Code != http.StatusOK {
		t.Fatalf("batch = %d %q", rec.Code, rec.Body.String())
	}
	if got.Succeeded != 3 || got.Failed != 7 {
		t.Fatalf("batch outcome = %d ok / %d failed, want 3/7: %s", got.Succeeded, got.Failed, mustJSON(got))
	}
	wantStatus := []int{200, 404, 200, 400, 400, 400, 400, 400, 400, 200}
	for i, r := range got.Results {
		if r.Status != wantStatus[i] {
			t.Fatalf("result %d status = %d (%v), want %d", i, r.Status, r.Error, wantStatus[i])
		}
		if r.Status != http.StatusOK && (r.Error == nil || r.Error.Code == "" || r.Error.Message == "") {
			t.Fatalf("failed result %d carries no structured error (%v)", i, r.Error)
		}
	}
	// The 404 carries its catalog code, same as the dedicated endpoint.
	if got.Results[1].Error.Code != "graph_not_found" {
		t.Fatalf("unknown-dataset code = %q, want graph_not_found", got.Results[1].Error.Code)
	}
	// The cross-op field checks must name the offending field family.
	if !strings.Contains(got.Results[5].Error.Message, "evalRuns, not runs") {
		t.Fatalf("solve-with-runs error = %q", got.Results[5].Error.Message)
	}
	if !strings.Contains(got.Results[6].Error.Message, "no solver fields") {
		t.Fatalf("spread-with-k error = %q", got.Results[6].Error.Message)
	}
}

func TestBatchEnvelopeValidation(t *testing.T) {
	d := testDataset(t)
	s, err := server.New(server.Config{
		Datasets: map[string]*comic.Dataset{"Flixster": d},
		MaxBatch: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if rec := do(t, s, http.MethodPost, "/v1/batch", `{"queries":[]}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", rec.Code)
	}
	q := `{"op":"spread","dataset":"Flixster","runs":10}`
	body := fmt.Sprintf(`{"queries":[%s,%s,%s,%s]}`, q, q, q, q)
	rec := do(t, s, http.MethodPost, "/v1/batch", body, nil)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "exceeds limit 3") {
		t.Fatalf("oversized batch = %d %q, want 400 with limit message", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, http.MethodGet, "/v1/batch", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/batch = %d, want 405", rec.Code)
	}
}

func mustJSON(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// BenchmarkServeBatchKSweep quantifies the amortization of a k=1..10 sweep
// submitted as one /v1/batch request versus ten sequential requests. Both
// share the RR-set build through the index (PR 1's cache keys already drop
// k under fixed θ); the batch additionally pays request decode/encode and
// handler overhead once instead of ten times. Each iteration uses a fresh
// master seed so every sweep starts cold (one real build per iteration).
func BenchmarkServeBatchKSweep(b *testing.B) {
	d := testDataset(b)
	sweep := func(seed uint64) []string {
		var queries []string
		for k := 1; k <= 10; k++ {
			queries = append(queries, fmt.Sprintf(
				`{"op":"selfinfmax","dataset":"Flixster","gap":%s,"k":%d,"seedsB":[1,2],"fixedTheta":20000,"evalRuns":200,"seed":%d}`,
				bIndifferentGAP, k, seed))
		}
		return queries
	}

	b.Run("batch", func(b *testing.B) {
		s := newTestServer(b, d)
		defer s.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body := fmt.Sprintf(`{"queries":[%s]}`, strings.Join(sweep(uint64(i)+1), ","))
			var got batchResp
			if rec := do(b, s, http.MethodPost, "/v1/batch", body, &got); rec.Code != http.StatusOK || got.Failed != 0 {
				b.Fatalf("batch = %d, %d failed", rec.Code, got.Failed)
			}
		}
	})
	b.Run("sequential10", func(b *testing.B) {
		s := newTestServer(b, d)
		defer s.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range sweep(uint64(i) + 1) {
				body := strings.TrimPrefix(q, `{"op":"selfinfmax",`)
				if rec := do(b, s, http.MethodPost, "/v1/selfinfmax", "{"+body, nil); rec.Code != http.StatusOK {
					b.Fatalf("solve = %d %q", rec.Code, rec.Body.String())
				}
			}
		}
	})
}
