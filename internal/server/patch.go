package server

import (
	"net/http"

	"comic/internal/datasets"
	"comic/internal/graph"
)

// PATCH /v1/graphs/{name}/edges — streaming graph updates.
//
// A patch applies one atomic batch of edge updates (add, remove,
// reweight) to a registered graph and advances its edit generation. The
// expensive part is not the CSR rebuild but the invalidated RR-set state:
// instead of discarding every cached collection on the graph, the server
// repairs them incrementally (rrset.Repair) — only the RR sets whose
// recorded edge examinations the batch actually touched are regenerated,
// from the same pinned RNG streams a cold rebuild would use, so the
// repaired collections are bitwise identical to a from-scratch build on
// the patched graph. Collections that cannot be repaired (no postings
// index, dirtiness above the threshold, foreign generator) are dropped
// and rebuild lazily on the next query.
//
// Consistency: in-flight solves pinned the previous generation and finish
// on it; new requests resolve the patched generation. The optional
// ifGeneration precondition makes read-modify-write loops safe: a client
// that solved on generation g can demand its patch apply to g and get a
// 409 graph_generation_conflict if another writer got there first.

// repairMaxDirtyFrac is the dirtiness threshold above which incremental
// repair of a cached collection falls back to dropping it: regenerating
// more than half the sets approaches the cost of the cold rebuild the
// next query would pay anyway, without the benefit of skipping the
// (cheap, but not free) repair bookkeeping.
const repairMaxDirtyFrac = 0.5

// edgeUpdatePayload is one operation in a PATCH /v1/graphs/{name}/edges
// batch. "p" is required for add and reweight, and must be absent for
// remove.
type edgeUpdatePayload struct {
	Op string   `json:"op"` // "add", "remove", "reweight"
	U  int32    `json:"u"`
	V  int32    `json:"v"`
	P  *float64 `json:"p,omitempty"`
}

// graphPatchRequest is the body of PATCH /v1/graphs/{name}/edges.
type graphPatchRequest struct {
	Updates []edgeUpdatePayload `json:"updates"`
	// IfGeneration, when present, is a precondition: the patch applies
	// only if the graph is still at this edit generation (409
	// graph_generation_conflict otherwise).
	IfGeneration *int64 `json:"ifGeneration,omitempty"`
}

// graphPatchResponse is the updated graph resource plus a report of what
// happened to its cached RR-set collections.
type graphPatchResponse struct {
	graphInfo
	Repair RepairSummary `json:"repair"`
}

// handleGraphEdges dispatches /v1/graphs/{name}/edges (PATCH only).
func (s *Server) handleGraphEdges(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPatch) {
		return
	}
	var req graphPatchRequest
	if !s.decodeBodyLimit(w, r, &req, s.cfg.MaxUploadBytes) {
		return
	}
	out, aerr := s.patchGraph(r.PathValue("name"), &req)
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// decodePatchUpdates validates the wire batch into graph.EdgeUpdate ops.
func (s *Server) decodePatchUpdates(payload []edgeUpdatePayload) ([]graph.EdgeUpdate, *apiError) {
	if len(payload) == 0 {
		return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
			"updates must hold at least one edge update")
	}
	ups := make([]graph.EdgeUpdate, len(payload))
	for i, p := range payload {
		switch op := graph.UpdateOp(p.Op); op {
		case graph.OpAdd, graph.OpReweight:
			if p.P == nil {
				return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
					"updates[%d]: op %q requires \"p\"", i, p.Op)
			}
			ups[i] = graph.EdgeUpdate{Op: op, U: p.U, V: p.V, P: *p.P}
		case graph.OpRemove:
			if p.P != nil {
				return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
					"updates[%d]: op \"remove\" takes no \"p\"", i)
			}
			ups[i] = graph.EdgeUpdate{Op: op, U: p.U, V: p.V}
		default:
			return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
				"updates[%d]: unknown op %q (want \"add\", \"remove\" or \"reweight\")", i, p.Op)
		}
	}
	return ups, nil
}

// patchGraph validates and executes one edge-update batch.
func (s *Server) patchGraph(name string, req *graphPatchRequest) (*graphPatchResponse, *apiError) {
	ups, aerr := s.decodePatchUpdates(req.Updates)
	if aerr != nil {
		return nil, aerr
	}

	// One patch at a time: repair-and-swap must see a stable current
	// version. Queries are unaffected — they pin whatever version is
	// current when they resolve the name.
	s.reg.patchMu.Lock()
	defer s.reg.patchMu.Unlock()

	ref, aerr := s.acquireGraph(name)
	if aerr != nil {
		return nil, aerr
	}
	//comic:allow lockorder patchMu exists to serialize the whole patch pipeline, I/O included; queries never take it
	defer s.reg.release(ref)
	if req.IfGeneration != nil && *req.IfGeneration != ref.v.gen {
		return nil, s.fail(http.StatusConflict, codeGraphGenerationConflict,
			"graph %q is at generation %d, not %d", name, ref.v.gen, *req.IfGeneration).
			withDetails(map[string]any{"generation": ref.v.gen, "ifGeneration": *req.IfGeneration})
	}

	newG, delta, err := ref.graph().ApplyUpdates(ups)
	if err != nil {
		return nil, s.fail(http.StatusBadRequest, codeInvalidArgument, "%s", err.Error())
	}
	e := ref.entry
	next := &graphVersion{
		d:           datasets.New(name, newG, ref.gap(), e.source),
		gen:         ref.v.gen + 1,
		id:          versionedID(e.cacheID, ref.v.gen+1),
		fingerprint: graphFingerprint(newG),
	}

	// Migrate the old generation's resident collections onto the patched
	// graph by incremental repair, re-keyed under the new versioned
	// GraphID. Unrepairable ones are dropped (lazy rebuild).
	//comic:allow lockorder patchMu exists to serialize the whole patch pipeline, I/O included; queries never take it
	rep := s.index.RepairGraph(ref.graph(), newG, next.id, delta, repairMaxDirtyFrac)

	// Persist the patched generation before publishing it: a patch that
	// would silently revert on restart is refused, exactly like an
	// unpersistable registration.
	s.reg.persistMu.Lock()
	//comic:allow lockorder persistMu's only job is to serialize graph persistence I/O
	perr := s.reg.persistGraph(e, next)
	s.reg.persistMu.Unlock()
	if perr != nil {
		//comic:allow lockorder patchMu exists to serialize the whole patch pipeline, I/O included; queries never take it
		s.index.DropGraph(newG) // discard the migrated collections; nothing was published
		return nil, s.fail(http.StatusInternalServerError, codeInternal,
			"persisting patched graph %q: %v", name, perr)
	}

	if err := s.reg.swapVersion(e, ref.v, next); err != nil {
		// The graph was deleted while the patch ran: honor the delete.
		s.reg.persistMu.Lock()
		//comic:allow lockorder persistMu's only job is to serialize graph persistence I/O
		s.reg.unpersistGraphOwned(e)
		s.reg.persistMu.Unlock()
		//comic:allow lockorder patchMu exists to serialize the whole patch pipeline, I/O included; queries never take it
		s.index.DropGraph(newG)
		return nil, s.fail(http.StatusConflict, codeGraphConflict, "%s", err.Error())
	}
	s.nGraphs.Add(1)
	return &graphPatchResponse{graphInfo: graphInfoOf(e, next), Repair: rep}, nil
}
