package server

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"comic/internal/core"
	"comic/internal/graph"
	"comic/internal/rng"
	"comic/internal/rrset"
)

func testGraph(tb testing.TB) *graph.Graph {
	tb.Helper()
	g := graph.PowerLaw(200, 4, 2.16, true, rng.New(1))
	graph.AssignWeightedCascade(g)
	return g
}

func testRequest(g *graph.Graph, seed uint64, theta int) rrset.CollectionRequest {
	return rrset.CollectionRequest{
		GraphID: "test",
		Graph:   g,
		// A bound-instance GAP (B indifferent to A), the form the sandwich
		// solver hands to RR-SIM(+).
		Kind:     rrset.KindSIMPlus,
		GAP:      core.GAP{QA0: 0.3, QAB: 0.8, QB0: 0.4, QBA: 0.4},
		Opposite: []int32{1, 2},
		K:        5,
		Opts:     rrset.Options{FixedTheta: theta},
		Seed:     seed,
	}
}

func TestIndexHitMiss(t *testing.T) {
	g := testGraph(t)
	idx := NewIndex(0)
	req := testRequest(g, 7, 200)

	c1, err := idx.Collection(req)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := idx.Collection(req)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("second identical request did not return the cached collection")
	}
	st := idx.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit", st)
	}
	if st.ResidentCollections != 1 || st.ResidentBytes != c1.Bytes() {
		t.Fatalf("occupancy = %d collections / %d bytes, want 1 / %d",
			st.ResidentCollections, st.ResidentBytes, c1.Bytes())
	}
}

func TestIndexKeyDiscriminates(t *testing.T) {
	g := testGraph(t)
	base := testRequest(g, 7, 200)

	// Every field that affects the generated sets must produce a new key.
	variants := []rrset.CollectionRequest{base, base, base, base, base, base}
	variants[1].Seed = 8
	variants[2].Kind = rrset.KindSIM
	variants[3].GAP.QAB = 0.85
	variants[4].Opposite = []int32{1, 3}
	variants[5].Opts.FixedTheta = 201
	keys := map[string]bool{}
	for _, v := range variants {
		keys[v.Key()] = true
	}
	if len(keys) != len(variants) {
		t.Fatalf("got %d distinct keys for %d distinct requests", len(keys), len(variants))
	}

	// Workers must NOT affect the key: it does not change the sets.
	w := base
	w.Opts.Workers = 3
	if w.Key() != base.Key() {
		t.Fatal("Workers changed the cache key")
	}

	// With FixedTheta set, generation never consults k, Epsilon, Ell or
	// MaxTheta (they only drive θ via KPT and Eq. 3), so none of them may
	// key the cache: a k- or epsilon-sweep shares one collection...
	kv := base
	kv.K = base.K + 1
	kv.Opts.Epsilon = 0.3
	kv.Opts.Ell = 2
	kv.Opts.MaxTheta = 12345
	if kv.Key() != base.Key() {
		t.Fatal("k/eps/ell/maxTheta changed the cache key despite FixedTheta being set")
	}
	// ...but with θ derived (k drives KPT and Eq. 3), k must key it.
	d1, d2 := base, base
	d1.Opts.FixedTheta = 0
	d2.Opts.FixedTheta = 0
	d2.K = base.K + 1
	if d1.Key() == d2.Key() {
		t.Fatal("K did not change the cache key with derived theta")
	}

	// Any FixedTheta <= 0 means "derive": the key must not fragment on
	// the exact non-positive value.
	neg := d1
	neg.Opts.FixedTheta = -7
	if neg.Key() != d1.Key() {
		t.Fatal("FixedTheta -7 and 0 produced different keys for the same build")
	}

	idx := NewIndex(0)
	for _, v := range variants {
		if _, err := idx.Collection(v); err != nil {
			t.Fatal(err)
		}
	}
	if st := idx.Stats(); st.Misses != int64(len(variants)) {
		t.Fatalf("misses = %d, want %d", st.Misses, len(variants))
	}
}

func TestIndexEmptyGraphIDKeysByInstance(t *testing.T) {
	// With no GraphID, pointer identity must keep two different graphs'
	// otherwise-identical requests apart — a shared index must never serve
	// one graph's RR sets for another.
	g1 := testGraph(t)
	g2 := graph.PowerLaw(300, 4, 2.16, true, rng.New(2))
	graph.AssignWeightedCascade(g2)

	r1 := testRequest(g1, 7, 100)
	r2 := testRequest(g2, 7, 100)
	r1.GraphID, r2.GraphID = "", ""
	if r1.Key() == r2.Key() {
		t.Fatal("requests on different graphs with empty GraphID share a key")
	}

	idx := NewIndex(0)
	if _, err := idx.Collection(r1); err != nil {
		t.Fatal(err)
	}
	c2, err := idx.Collection(r2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c2.Len(); i++ {
		if c2.Root(i) >= int32(g2.N()) {
			t.Fatalf("collection served for g2 contains node %d from g1", c2.Root(i))
		}
	}
	if st := idx.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses / 0 hits", st)
	}
}

func TestIndexDetectsGraphIDMisuse(t *testing.T) {
	// One GraphID, two different-size graphs: the hit path must fail
	// loudly instead of serving the first graph's RR sets for the second.
	g1 := testGraph(t)
	g2 := graph.PowerLaw(300, 4, 2.16, true, rng.New(2))
	graph.AssignWeightedCascade(g2)

	idx := NewIndex(0)
	r1 := testRequest(g1, 7, 100)
	if _, err := idx.Collection(r1); err != nil {
		t.Fatal(err)
	}
	r2 := testRequest(g2, 7, 100) // same GraphID "test", same params
	if _, err := idx.Collection(r2); err == nil {
		t.Fatal("want an error for a GraphID reused across different graphs, got a silent hit")
	}
}

func TestIndexDedupWaitDetectsGraphIDMisuse(t *testing.T) {
	// A waiter piggybacking on an in-flight build must get the same
	// GraphID-reuse guard as a cache hit: if the build in progress is for a
	// *different* graph under the same GraphID, the waiter must get an
	// error, not that graph's collection. Register the flight by hand so
	// the in-flight window is deterministic rather than a race against a
	// real build.
	g1 := testGraph(t)
	g2 := graph.PowerLaw(300, 4, 2.16, true, rng.New(2))
	graph.AssignWeightedCascade(g2)

	idx := NewIndex(0)
	r2 := testRequest(g2, 7, 100) // same GraphID "test", same parameters
	idx.mu.Lock()
	idx.inflight[r2.Key()] = &flight{done: make(chan struct{}), graph: g1}
	idx.mu.Unlock()

	// The flight's done channel never closes: the call below must error on
	// the mismatch check before ever blocking on it.
	errc := make(chan error, 1)
	go func() {
		_, err := idx.Collection(r2)
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("want an error for a dedup wait on a different graph's build, got its collection")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("waiter blocked on the mismatched flight instead of failing fast")
	}
	if st := idx.Stats(); st.DedupWaits != 0 {
		t.Fatalf("dedupWaits = %d, want 0: the mismatched request must not count as a wait", st.DedupWaits)
	}

	// Same graph instance (or a same-size reload) still piggybacks
	// normally: r1 shares r2's key (same GraphID and parameters), so the
	// registered flight serves it once resolved.
	r1 := testRequest(g1, 7, 100)
	idx.mu.Lock()
	f := idx.inflight[r1.Key()]
	idx.mu.Unlock()
	f.col = &rrset.Collection{}
	close(f.done)
	col, err := idx.Collection(r1)
	if err != nil || col != f.col {
		t.Fatalf("matching-graph waiter got (%v, %v), want the flight's collection", col, err)
	}
	if st := idx.Stats(); st.DedupWaits != 1 {
		t.Fatalf("dedupWaits = %d, want 1", st.DedupWaits)
	}
}

func TestIndexRejectsOutOfRangeOpposite(t *testing.T) {
	// An out-of-range opposite seed must be a build error, never a panic
	// on a generation worker (which would kill the whole process).
	g := testGraph(t)
	req := testRequest(g, 7, 100)
	req.Opposite = []int32{int32(g.N()) + 50}

	idx := NewIndex(0)
	if _, err := idx.Collection(req); err == nil {
		t.Fatal("want an error for an out-of-range opposite seed, got nil")
	}
	if st := idx.Stats(); st.ResidentCollections != 0 {
		t.Fatalf("resident = %d, want 0: failed builds must not be cached", st.ResidentCollections)
	}
}

func TestIndexBuildPanicDoesNotPoisonKey(t *testing.T) {
	// A build that panics on the calling goroutine (here: nil graph) must
	// surface as an error — to this request and to any later identical one
	// — rather than leaving a never-closed flight that would block them
	// forever.
	req := testRequest(nil, 7, 100)

	idx := NewIndex(0)
	if _, err := idx.Collection(req); err == nil {
		t.Fatal("want an error from a panicking build, got nil")
	}
	done := make(chan error, 1)
	go func() {
		_, err := idx.Collection(req)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want an error from the retried build, got nil")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("retried request blocked: the panicked flight poisoned the key")
	}
	if st := idx.Stats(); st.ResidentCollections != 0 {
		t.Fatalf("resident = %d, want 0: failed builds must not be cached", st.ResidentCollections)
	}
}

func TestIndexBuildLimitNoDeadlock(t *testing.T) {
	// A build limit of 1 serializes builds but must not deadlock with the
	// singleflight machinery: waiters on a queued build's key block on its
	// done channel, not on the semaphore.
	g := testGraph(t)
	idx := NewIndex(0)
	idx.SetBuildLimit(1)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		req := testRequest(g, uint64(1+i%4), 200) // 4 distinct keys, each twice
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := idx.Collection(req); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st := idx.Stats(); st.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (one build per distinct key)", st.Misses)
	}
}

func TestIndexDeterministicContent(t *testing.T) {
	g := testGraph(t)
	req := testRequest(g, 7, 300)
	c1, err := NewIndex(0).Collection(req)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewIndex(0).Collection(req)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Len() != c2.Len() {
		t.Fatal("identical requests built different collection sizes")
	}
	for i := 0; i < c1.Len(); i++ {
		if !reflect.DeepEqual(c1.Set(i), c2.Set(i)) {
			t.Fatalf("identical requests built different collections (set %d)", i)
		}
	}
}

func TestIndexLRUEviction(t *testing.T) {
	g := testGraph(t)
	r1 := testRequest(g, 1, 200)
	r2 := testRequest(g, 2, 200)
	r3 := testRequest(g, 3, 200)

	// Measure deterministic sizes with an unbounded index, then pick a
	// budget that fits {r1,r2} and {r1,r3} but not all three.
	pre := NewIndex(0)
	c1, err1 := pre.Collection(r1)
	c2, err2 := pre.Collection(r2)
	c3, err3 := pre.Collection(r3)
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	s1, s2, s3 := c1.Bytes(), c2.Bytes(), c3.Bytes()
	budget := s1 + s2
	if s1+s3 > budget {
		budget = s1 + s3
	}

	idx := NewIndex(budget)
	idx.Collection(r1)
	idx.Collection(r2)
	idx.Collection(r1) // touch r1 so r2 becomes least recently used
	idx.Collection(r3) // must evict r2
	st := idx.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.ResidentBytes > budget {
		t.Fatalf("resident %d bytes over budget %d", st.ResidentBytes, budget)
	}

	hitsBefore := st.Hits
	idx.Collection(r1) // still resident
	if st = idx.Stats(); st.Hits != hitsBefore+1 {
		t.Fatal("r1 was evicted but should have been kept (recently used)")
	}
	missesBefore := st.Misses
	idx.Collection(r2) // evicted, must rebuild
	if st = idx.Stats(); st.Misses != missesBefore+1 {
		t.Fatal("r2 was still resident but should have been evicted")
	}
}

func TestIndexTinyBudgetKeepsNewest(t *testing.T) {
	// A budget smaller than any single collection still serves requests,
	// holding exactly the newest collection.
	g := testGraph(t)
	idx := NewIndex(1)
	if _, err := idx.Collection(testRequest(g, 1, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Collection(testRequest(g, 2, 100)); err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	if st.ResidentCollections != 1 {
		t.Fatalf("resident = %d, want 1", st.ResidentCollections)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestIndexSingleflight(t *testing.T) {
	g := testGraph(t)
	idx := NewIndex(0)
	req := testRequest(g, 7, 5000)

	const workers = 16
	start := make(chan struct{})
	cols := make([]*rrset.Collection, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			c, err := idx.Collection(req)
			if err != nil {
				t.Error(err)
				return
			}
			cols[i] = c
		}(i)
	}
	close(start)
	wg.Wait()

	st := idx.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1: concurrent identical queries must build once", st.Misses)
	}
	if st.Hits+st.DedupWaits != workers-1 {
		t.Fatalf("hits %d + dedupWaits %d != %d", st.Hits, st.DedupWaits, workers-1)
	}
	for i := 1; i < workers; i++ {
		if cols[i] != cols[0] {
			t.Fatal("concurrent requests returned different collection instances")
		}
	}
}
