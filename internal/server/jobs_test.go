package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"comic"
	"comic/internal/server"
)

// jobStatusResp mirrors the /v1/jobs wire form in tests.
type jobStatusResp struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Queries int    `json:"queries"`
	Result  *struct {
		Results []struct {
			Op     string          `json:"op"`
			Status int             `json:"status"`
			Error  *errBody        `json:"error"`
			Result json.RawMessage `json:"result"`
		} `json:"results"`
		Succeeded int `json:"succeeded"`
		Failed    int `json:"failed"`
	} `json:"result"`
}

// pollJob polls GET /v1/jobs/{id} until the job reaches a terminal state.
func pollJob(tb testing.TB, s *server.Server, id string) jobStatusResp {
	tb.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st jobStatusResp
		rec := do(tb, s, http.MethodGet, "/v1/jobs/"+id, "", &st)
		if rec.Code != http.StatusOK {
			tb.Fatalf("poll %s = %d %q", id, rec.Code, rec.Body.String())
		}
		if st.State == "done" || st.State == "canceled" {
			return st
		}
		if time.Now().After(deadline) {
			tb.Fatalf("job %s stuck in state %q", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobSolveParity is the acceptance determinism contract: one solve
// submitted synchronously, inside a /v1/batch, and through /v1/jobs must
// return byte-identical seeds and objectives.
func TestJobSolveParity(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)
	query := `{"dataset":"Flixster","k":5,"seedsB":[1,2,3],"fixedTheta":2000,"evalRuns":300,"seed":7}`

	var direct solveResp
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", query, &direct); rec.Code != http.StatusOK {
		t.Fatalf("direct solve = %d %q", rec.Code, rec.Body.String())
	}

	wrapped := fmt.Sprintf(`{"queries":[{"op":"selfinfmax",%s]}`, query[1:])
	var batch batchResp
	if rec := do(t, s, http.MethodPost, "/v1/batch", wrapped, &batch); rec.Code != http.StatusOK {
		t.Fatalf("batch = %d %q", rec.Code, rec.Body.String())
	}
	var fromBatch solveResp
	if err := json.Unmarshal(batch.Results[0].Result, &fromBatch); err != nil {
		t.Fatal(err)
	}

	var submitted jobStatusResp
	if rec := do(t, s, http.MethodPost, "/v1/jobs", wrapped, &submitted); rec.Code != http.StatusAccepted {
		t.Fatalf("job submit = %d %q", rec.Code, rec.Body.String())
	}
	if submitted.ID == "" || (submitted.State != "queued" && submitted.State != "running") {
		t.Fatalf("job submit response = %+v", submitted)
	}
	finished := pollJob(t, s, submitted.ID)
	if finished.State != "done" || finished.Result == nil || finished.Result.Succeeded != 1 {
		t.Fatalf("job outcome = %+v", finished)
	}
	var fromJob solveResp
	if err := json.Unmarshal(finished.Result.Results[0].Result, &fromJob); err != nil {
		t.Fatal(err)
	}

	for name, got := range map[string]solveResp{"batch": fromBatch, "job": fromJob} {
		if !reflect.DeepEqual(got.Seeds, direct.Seeds) || got.Objective != direct.Objective || got.Chosen != direct.Chosen {
			t.Fatalf("%s solve (%v, %v, %s) != direct (%v, %v, %s)",
				name, got.Seeds, got.Objective, got.Chosen, direct.Seeds, direct.Objective, direct.Chosen)
		}
	}
}

// TestJobLifecycle covers submit → list → poll → discard, and 404s for
// unknown ids.
func TestJobLifecycle(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)
	var submitted jobStatusResp
	body := `{"queries":[{"op":"spread","dataset":"Flixster","seedsA":[0],"runs":200,"seed":1}]}`
	if rec := do(t, s, http.MethodPost, "/v1/jobs", body, &submitted); rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d %q", rec.Code, rec.Body.String())
	}
	finished := pollJob(t, s, submitted.ID)
	if finished.State != "done" || finished.Result == nil || finished.Result.Succeeded != 1 {
		t.Fatalf("job = %+v", finished)
	}

	var list struct {
		Jobs []jobStatusResp `json:"jobs"`
	}
	do(t, s, http.MethodGet, "/v1/jobs", "", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != submitted.ID || list.Jobs[0].State != "done" {
		t.Fatalf("job list = %+v", list.Jobs)
	}
	if list.Jobs[0].Result != nil {
		t.Fatal("list responses must omit results")
	}

	// DELETE on a finished job discards the record.
	if rec := do(t, s, http.MethodDelete, "/v1/jobs/"+submitted.ID, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("delete = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/v1/jobs/"+submitted.ID, "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("poll after delete = %d, want 404", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/v1/jobs/nope", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", rec.Code)
	}
	// The submit counted once; the rejected empty submission below counts
	// as an error, not a job.
	if rec := do(t, s, http.MethodPost, "/v1/jobs", `{"queries":[]}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty job = %d, want 400", rec.Code)
	}
	var st struct {
		Requests map[string]int64 `json:"requests"`
	}
	do(t, s, http.MethodGet, "/v1/stats", "", &st)
	if st.Requests["jobs"] != 1 {
		t.Fatalf("jobs counter = %d, want 1 (%v)", st.Requests["jobs"], st.Requests)
	}
}

// TestJobPoolSaturation pins the bounded-queue contract (run under -race
// in CI): with one worker and one queue slot, a burst of submissions gets
// some accepted and the overflow rejected with 429 — and every accepted
// job still runs to completion.
func TestJobPoolSaturation(t *testing.T) {
	d := testDataset(t)
	s, err := server.New(server.Config{
		Datasets:      map[string]*comic.Dataset{"Flixster": d},
		MaxJobs:       1,
		MaxQueuedJobs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Each job is a batch of moderately expensive spreads, so the single
	// worker cannot drain a tight submission burst.
	body := `{"queries":[
		{"op":"spread","dataset":"Flixster","seedsA":[0],"runs":20000,"seed":1},
		{"op":"spread","dataset":"Flixster","seedsA":[1],"runs":20000,"seed":2},
		{"op":"spread","dataset":"Flixster","seedsA":[2],"runs":20000,"seed":3}
	]}`
	var accepted []string
	rejected := 0
	for i := 0; i < 10; i++ {
		var st jobStatusResp
		rec := do(t, s, http.MethodPost, "/v1/jobs", body, &st)
		switch rec.Code {
		case http.StatusAccepted:
			accepted = append(accepted, st.ID)
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("submit %d = %d %q", i, rec.Code, rec.Body.String())
		}
	}
	if len(accepted) == 0 {
		t.Fatal("no job was accepted")
	}
	if rejected == 0 {
		t.Fatalf("10 bursts onto a 1-worker/1-slot pool all accepted (%d)", len(accepted))
	}
	for _, id := range accepted {
		if st := pollJob(t, s, id); st.State != "done" || st.Result.Failed != 0 {
			t.Fatalf("job %s = %+v", id, st)
		}
	}
}

// TestJobCancellation covers DELETE on a live job: the batch stops at a
// query boundary, the job reports "canceled", and the queries that never
// ran are marked as such in the partial result.
func TestJobCancellation(t *testing.T) {
	d := testDataset(t)
	s, err := server.New(server.Config{
		Datasets: map[string]*comic.Dataset{"Flixster": d},
		MaxJobs:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	var queries string
	for i := 0; i < 40; i++ {
		if i > 0 {
			queries += ","
		}
		queries += fmt.Sprintf(`{"op":"spread","dataset":"Flixster","seedsA":[0],"runs":20000,"seed":%d}`, i)
	}
	var submitted jobStatusResp
	if rec := do(t, s, http.MethodPost, "/v1/jobs", `{"queries":[`+queries+`]}`, &submitted); rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodDelete, "/v1/jobs/"+submitted.ID, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("cancel = %d %q", rec.Code, rec.Body.String())
	}
	st := pollJob(t, s, submitted.ID)
	switch {
	case st.State == "canceled" && st.Result != nil:
		// The worker observed the cancellation mid-run: skipped queries
		// are reported explicitly, not silently dropped.
		if len(st.Result.Results) != 40 {
			t.Fatalf("canceled job result has %d entries, want 40", len(st.Result.Results))
		}
		if st.Result.Failed == 0 {
			t.Fatal("canceled job reports no skipped queries")
		}
	case st.State == "canceled":
		// Canceled while still queued: it never ran, so no result exists.
	case st.State == "done":
		// Legal if the whole batch outran the DELETE.
	default:
		t.Fatalf("job state after cancel = %q", st.State)
	}
}
