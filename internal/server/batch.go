package server

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// batchQuery is one operation inside a /v1/batch request or an async job:
// the union of the single-query request bodies plus an "op" discriminator.
// Fields that don't belong to the chosen op must be left at their zero
// value (a spread query with "k", or a solve with "runs", is rejected —
// silently ignoring them would hide client bugs).
type batchQuery struct {
	Op      string      `json:"op"` // "spread", "boost", "selfinfmax", "compinfmax"
	Dataset string      `json:"dataset"`
	GAP     *gapPayload `json:"gap,omitempty"`
	SeedsA  []int32     `json:"seedsA,omitempty"`
	SeedsB  []int32     `json:"seedsB,omitempty"`
	Seed    *uint64     `json:"seed,omitempty"`

	// Monte-Carlo ops (spread, boost).
	Runs int `json:"runs,omitempty"`

	// Solve ops (selfinfmax, compinfmax).
	K          int     `json:"k,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	FixedTheta int     `json:"fixedTheta,omitempty"`
	MaxTheta   int     `json:"maxTheta,omitempty"`
	EvalRuns   int     `json:"evalRuns,omitempty"`
	GreedyRuns int     `json:"greedyRuns,omitempty"`
}

// batchRequest is the body of POST /v1/batch and POST /v1/jobs.
type batchRequest struct {
	Queries []batchQuery `json:"queries"`
}

// batchResult is one query's outcome inside a batchResponse: either a
// Result (the same body the query's dedicated endpoint returns) or an
// Error — the same structured error body the dedicated endpoint would
// have wrapped in its envelope — with the HTTP status it would have
// received. One failing query never fails the batch.
type batchResult struct {
	Op     string     `json:"op"`
	Status int        `json:"status"`
	Error  *errorBody `json:"error,omitempty"`
	Result any        `json:"result,omitempty"`
}

// batchResponse is the body returned by /v1/batch (and stored as a
// finished job's result).
type batchResponse struct {
	Results   []batchResult `json:"results"`
	Succeeded int           `json:"succeeded"`
	Failed    int           `json:"failed"`
	ElapsedMs float64       `json:"elapsedMs"`
}

// batchBodyLimit sizes the request-body cap for /v1/batch and /v1/jobs:
// 64 KiB per permitted query (room for multi-thousand-node seed lists),
// never below the generic 1 MiB single-query limit. Scaling with MaxBatch
// keeps the two knobs consistent — a batch that respects MaxBatch is not
// rejected for its byte size.
func (s *Server) batchBodyLimit() int64 {
	return max(int64(s.cfg.MaxBatch)*(64<<10), 1<<20)
}

// validateBatch checks the envelope shared by /v1/batch and /v1/jobs.
func (s *Server) validateBatch(req *batchRequest) *apiError {
	if len(req.Queries) == 0 {
		return s.fail(http.StatusBadRequest, codeInvalidArgument, "batch requires at least one query")
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		return s.fail(http.StatusBadRequest, codeInvalidArgument,
			"batch of %d queries exceeds limit %d", len(req.Queries), s.cfg.MaxBatch)
	}
	return nil
}

// runQuery validates and executes one batch query through the same
// validation and solver paths as the dedicated endpoints, so a query
// answered in a batch or a job is byte-identical to the same query POSTed
// on its own (ElapsedMs aside).
func (s *Server) runQuery(q *batchQuery) (any, *apiError) {
	switch q.Op {
	case "spread", "boost":
		if q.K != 0 || q.Epsilon != 0 || q.FixedTheta != 0 || q.MaxTheta != 0 || q.EvalRuns != 0 || q.GreedyRuns != 0 {
			return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
				"%s queries take no solver fields (k/epsilon/fixedTheta/maxTheta/evalRuns/greedyRuns)", q.Op)
		}
		req := &estimateRequest{
			Dataset: q.Dataset, GAP: q.GAP,
			SeedsA: q.SeedsA, SeedsB: q.SeedsB,
			Runs: q.Runs, Seed: q.Seed,
		}
		if q.Op == "spread" {
			return s.runSpread(req)
		}
		return s.runBoost(req)
	case "selfinfmax", "compinfmax":
		if q.Runs != 0 {
			return nil, s.fail(http.StatusBadRequest, codeInvalidArgument, "%s queries take evalRuns, not runs", q.Op)
		}
		req := &solveRequest{
			Dataset: q.Dataset, GAP: q.GAP, K: q.K,
			SeedsA: q.SeedsA, SeedsB: q.SeedsB,
			Epsilon: q.Epsilon, FixedTheta: q.FixedTheta, MaxTheta: q.MaxTheta,
			EvalRuns: q.EvalRuns, GreedyRuns: q.GreedyRuns, Seed: q.Seed,
		}
		problem := "self"
		if q.Op == "compinfmax" {
			problem = "comp"
		}
		return s.runSolve(problem, req)
	case "":
		return nil, s.fail(http.StatusBadRequest, codeInvalidArgument, "query is missing \"op\"")
	default:
		return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
			"unknown op %q (want spread, boost, selfinfmax or compinfmax)", q.Op)
	}
}

// runBatch executes queries in order. Queries sharing a cache key — e.g. a
// k-sweep over one (graph, GAP, opposite, fixed θ, seed) configuration —
// reuse a single RR-set collection build through the index: the first
// solve pays generation, the rest are warm selections. Execution stops
// early when ctx is canceled (client gone, or job canceled); queries that
// never ran are reported with the ctx error rather than silently dropped.
func (s *Server) runBatch(ctx context.Context, queries []batchQuery) *batchResponse {
	t0 := time.Now()
	resp := &batchResponse{Results: make([]batchResult, 0, len(queries))}
	for i := range queries {
		q := &queries[i]
		if ctx != nil && ctx.Err() != nil {
			resp.Results = append(resp.Results, batchResult{
				Op: q.Op, Status: statusCanceled,
				Error: &errorBody{
					Code:    codeCanceled,
					Message: fmt.Sprintf("canceled before this query ran: %v", ctx.Err()),
				},
			})
			resp.Failed++
			continue
		}
		out, aerr := s.runQuery(q)
		if aerr != nil {
			b := aerr.body()
			resp.Results = append(resp.Results, batchResult{Op: q.Op, Status: aerr.Status, Error: &b})
			resp.Failed++
			continue
		}
		resp.Results = append(resp.Results, batchResult{Op: q.Op, Status: http.StatusOK, Result: out})
		resp.Succeeded++
	}
	resp.ElapsedMs = msSince(t0)
	return resp
}

// statusCanceled marks batch queries skipped by cancellation; 499 is the
// de-facto "client closed request" status.
const statusCanceled = 499

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req batchRequest
	if !s.decodeBodyLimit(w, r, &req, s.batchBodyLimit()) {
		return
	}
	if aerr := s.validateBatch(&req); aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	s.nBatch.Add(1)
	writeJSON(w, http.StatusOK, s.runBatch(r.Context(), req.Queries))
}
