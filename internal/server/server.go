// Package server implements the comic query-serving layer: a JSON-over-HTTP
// API that answers Com-IC spread, boost, SelfInfMax and CompInfMax queries
// over a set of preloaded datasets, amortizing RR-set generation — the
// dominant cost of the TIM-style solvers — behind a shared Index cache.
//
// Endpoints (all request/response bodies are JSON):
//
//	POST /v1/spread      Monte-Carlo σ_A and σ_B for given seed sets
//	POST /v1/boost       paired-world CompInfMax objective estimate
//	POST /v1/selfinfmax  Problem 1 solve (RR-SIM+ + sandwich approximation)
//	POST /v1/compinfmax  Problem 2 solve (RR-CIM on the q_{B|A}→1 bound)
//	GET  /healthz        liveness probe
//	GET  /v1/stats       cache and request counters, dataset inventory
//
// Determinism: a solve request with master seed s returns exactly the seed
// set the offline cmd/comic-seeds tool prints for the same graph, GAPs,
// opposite seeds and budget parameters — whether the RR-set collections
// come out of the cache (warm) or are generated on the fly (cold). The
// cache can therefore be introduced, sized, or flushed without changing any
// response body, only latencies.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"comic/internal/core"
	"comic/internal/datasets"
	"comic/internal/montecarlo"
	"comic/internal/sandwich"
)

// Config configures a Server.
type Config struct {
	// Datasets maps the names accepted in request bodies to the networks
	// (with their default GAPs) the server answers queries on. Required.
	Datasets map[string]*datasets.Dataset
	// CacheBytes bounds the RR-set index (exact resident bytes).
	// 0 means the 1 GiB default — cache keys include client-controlled
	// fields (seed, GAP, opposite seeds), so an unbounded index is a
	// remote memory-growth vector. Negative means explicitly unbounded.
	CacheBytes int64
	// MaxConcurrentBuilds bounds how many RR-set collection builds may
	// run at once; queued builds wait their turn. The cache byte budget
	// covers only resident collections, so without this bound N
	// concurrent distinct queries hold N full collections in flight.
	// 0 means the default of 4; negative means unbounded.
	MaxConcurrentBuilds int
	// MaxK caps the per-request seed-set size (default 500).
	MaxK int
	// MaxRuns caps per-request Monte-Carlo budgets (default 200000).
	MaxRuns int
	// MaxTheta caps per-request RR-set budgets (default 2000000).
	MaxTheta int
	// Workers bounds solver parallelism per request (default GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 1 << 30
	}
	if c.MaxConcurrentBuilds == 0 {
		c.MaxConcurrentBuilds = 4
	}
	if c.MaxK <= 0 {
		c.MaxK = 500
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 200000
	}
	if c.MaxTheta <= 0 {
		c.MaxTheta = 2_000_000
	}
	return c
}

// Server answers comic queries over HTTP. Create one with New; it
// implements http.Handler and is safe for concurrent use.
type Server struct {
	cfg     Config
	index   *Index
	mux     *http.ServeMux
	started time.Time

	nSpread, nBoost, nSelf, nComp, nErrors atomic.Int64
}

// New validates cfg and returns a ready-to-serve Server with an empty
// RR-set index.
func New(cfg Config) (*Server, error) {
	if len(cfg.Datasets) == 0 {
		return nil, errors.New("server: Config.Datasets must name at least one dataset")
	}
	for name, d := range cfg.Datasets {
		if d == nil || d.Graph == nil {
			return nil, fmt.Errorf("server: dataset %q has no graph", name)
		}
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		index:   NewIndex(cfg.CacheBytes),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.index.SetBuildLimit(cfg.MaxConcurrentBuilds)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/spread", s.handleSpread)
	s.mux.HandleFunc("/v1/boost", s.handleBoost)
	s.mux.HandleFunc("/v1/selfinfmax", s.handleSolve("self"))
	s.mux.HandleFunc("/v1/compinfmax", s.handleSolve("comp"))
	return s, nil
}

// ServeHTTP dispatches to the v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Index exposes the server's RR-set cache (for stats or for sharing with
// in-process solves).
func (s *Server) Index() *Index { return s.index }

// Serve builds a Server from cfg and runs it on addr until ctx is canceled,
// then shuts down gracefully, draining in-flight requests for up to ten
// seconds. It returns http.ErrServerClosed-free: nil on clean shutdown.
func Serve(ctx context.Context, addr string, cfg Config) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, l, cfg)
}

// ServeListener is Serve on an already-bound listener, for callers that
// need to know the port before serving (e.g. addr ":0" in tests). It takes
// ownership of l.
func ServeListener(ctx context.Context, l net.Listener, cfg Config) error {
	s, err := New(cfg)
	if err != nil {
		l.Close()
		return err
	}
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// --- request/response payloads ---

// gapPayload is the wire form of a GAP; absent → the dataset's learned GAP.
type gapPayload struct {
	QA0 float64 `json:"qa0"`
	QAB float64 `json:"qab"`
	QB0 float64 `json:"qb0"`
	QBA float64 `json:"qba"`
}

func (p *gapPayload) toGAP() core.GAP {
	return core.GAP{QA0: p.QA0, QAB: p.QAB, QB0: p.QB0, QBA: p.QBA}
}

// estimateRequest is the body of /v1/spread and /v1/boost.
type estimateRequest struct {
	Dataset string      `json:"dataset"`
	GAP     *gapPayload `json:"gap,omitempty"`
	SeedsA  []int32     `json:"seedsA,omitempty"`
	SeedsB  []int32     `json:"seedsB,omitempty"`
	Runs    int         `json:"runs,omitempty"`
	Seed    *uint64     `json:"seed,omitempty"`
}

// spreadResponse is the body returned by /v1/spread.
type spreadResponse struct {
	Dataset   string  `json:"dataset"`
	MeanA     float64 `json:"meanA"`
	StderrA   float64 `json:"stderrA"`
	MeanB     float64 `json:"meanB"`
	StderrB   float64 `json:"stderrB"`
	Runs      int     `json:"runs"`
	Seed      uint64  `json:"seed"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// boostResponse is the body returned by /v1/boost.
type boostResponse struct {
	Dataset   string  `json:"dataset"`
	Boost     float64 `json:"boost"`
	Stderr    float64 `json:"stderr"`
	Runs      int     `json:"runs"`
	Seed      uint64  `json:"seed"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// solveRequest is the body of /v1/selfinfmax (uses SeedsB as the fixed
// opposite set) and /v1/compinfmax (uses SeedsA).
type solveRequest struct {
	Dataset    string      `json:"dataset"`
	GAP        *gapPayload `json:"gap,omitempty"`
	K          int         `json:"k"`
	SeedsA     []int32     `json:"seedsA,omitempty"`
	SeedsB     []int32     `json:"seedsB,omitempty"`
	Epsilon    float64     `json:"epsilon,omitempty"`
	FixedTheta int         `json:"fixedTheta,omitempty"`
	MaxTheta   int         `json:"maxTheta,omitempty"`
	EvalRuns   int         `json:"evalRuns,omitempty"`
	Seed       *uint64     `json:"seed,omitempty"`
}

// solveCandidate is one sandwich candidate in a solveResponse.
type solveCandidate struct {
	Name      string  `json:"name"`
	Seeds     []int32 `json:"seeds"`
	Objective float64 `json:"objective"`
	Theta     int     `json:"theta,omitempty"`
}

// solveResponse is the body returned by the solve endpoints.
type solveResponse struct {
	Dataset    string           `json:"dataset"`
	Problem    string           `json:"problem"`
	K          int              `json:"k"`
	Seed       uint64           `json:"seed"`
	Seeds      []int32          `json:"seeds"`
	Objective  float64          `json:"objective"`
	Chosen     string           `json:"chosen"`
	UpperRatio float64          `json:"upperRatio,omitempty"`
	Candidates []solveCandidate `json:"candidates"`
	ElapsedMs  float64          `json:"elapsedMs"`
}

// statsResponse is the body returned by /v1/stats.
type statsResponse struct {
	UptimeSeconds float64          `json:"uptimeSeconds"`
	Index         IndexStats       `json:"index"`
	Requests      map[string]int64 `json:"requests"`
	Datasets      []datasetInfo    `json:"datasets"`
}

// datasetInfo describes one served dataset in /v1/stats and /healthz.
type datasetInfo struct {
	Name  string     `json:"name"`
	Nodes int        `json:"nodes"`
	Edges int        `json:"edges"`
	GAP   gapPayload `json:"gap"`
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.started).Seconds(),
		"datasets":      s.datasetNames(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	infos := make([]datasetInfo, 0, len(s.cfg.Datasets))
	for name, d := range s.cfg.Datasets {
		infos = append(infos, datasetInfo{
			Name:  name,
			Nodes: d.Graph.N(),
			Edges: d.Graph.M(),
			GAP:   gapPayload{QA0: d.GAP.QA0, QAB: d.GAP.QAB, QB0: d.GAP.QB0, QBA: d.GAP.QBA},
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Index:         s.index.Stats(),
		Requests: map[string]int64{
			"spread":     s.nSpread.Load(),
			"boost":      s.nBoost.Load(),
			"selfinfmax": s.nSelf.Load(),
			"compinfmax": s.nComp.Load(),
			"errors":     s.nErrors.Load(),
		},
		Datasets: infos,
	})
}

func (s *Server) handleSpread(w http.ResponseWriter, r *http.Request) {
	s.nSpread.Add(1)
	req, d, gap, ok := s.decodeEstimate(w, r)
	if !ok {
		return
	}
	t0 := time.Now()
	est := montecarlo.New(d.Graph, gap)
	est.Workers = s.cfg.Workers
	res := est.Estimate(req.SeedsA, req.SeedsB, req.Runs, *req.Seed)
	writeJSON(w, http.StatusOK, spreadResponse{
		Dataset: req.Dataset,
		MeanA:   res.MeanA, StderrA: res.StderrA,
		MeanB: res.MeanB, StderrB: res.StderrB,
		Runs: res.Runs, Seed: *req.Seed,
		ElapsedMs: msSince(t0),
	})
}

func (s *Server) handleBoost(w http.ResponseWriter, r *http.Request) {
	s.nBoost.Add(1)
	req, d, gap, ok := s.decodeEstimate(w, r)
	if !ok {
		return
	}
	if len(req.SeedsB) == 0 {
		s.httpError(w, http.StatusBadRequest, "boost requires a non-empty seedsB")
		return
	}
	t0 := time.Now()
	est := montecarlo.New(d.Graph, gap)
	est.Workers = s.cfg.Workers
	mean, stderr := est.BoostPaired(req.SeedsA, req.SeedsB, req.Runs, *req.Seed)
	writeJSON(w, http.StatusOK, boostResponse{
		Dataset: req.Dataset,
		Boost:   mean, Stderr: stderr,
		Runs: req.Runs, Seed: *req.Seed,
		ElapsedMs: msSince(t0),
	})
}

// decodeEstimate parses and validates the shared body of the two
// Monte-Carlo endpoints, filling in defaults (runs 10000, seed 1).
func (s *Server) decodeEstimate(w http.ResponseWriter, r *http.Request) (*estimateRequest, *datasets.Dataset, core.GAP, bool) {
	var req estimateRequest
	if !s.decodeBody(w, r, &req) {
		return nil, nil, core.GAP{}, false
	}
	d, ok := s.lookupDataset(w, req.Dataset)
	if !ok {
		return nil, nil, core.GAP{}, false
	}
	gap := d.GAP
	if req.GAP != nil {
		gap = req.GAP.toGAP()
	}
	if err := gap.Validate(); err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return nil, nil, core.GAP{}, false
	}
	if req.Runs <= 0 {
		// The default is clamped to the cap; only explicit client values
		// above it are rejected.
		req.Runs = min(10000, s.cfg.MaxRuns)
	}
	if req.Runs > s.cfg.MaxRuns {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("runs %d exceeds limit %d", req.Runs, s.cfg.MaxRuns))
		return nil, nil, core.GAP{}, false
	}
	if req.Seed == nil {
		one := uint64(1)
		req.Seed = &one
	}
	if !s.checkSeeds(w, d, req.SeedsA, "seedsA") || !s.checkSeeds(w, d, req.SeedsB, "seedsB") {
		return nil, nil, core.GAP{}, false
	}
	return &req, d, gap, true
}

// handleSolve returns the handler for one of the two seed-selection
// problems. The solver configuration mirrors cmd/comic-seeds exactly
// (epsilon 0.5, 10000 evaluation runs, seed 1 by default), so a warm cache
// answer selects the same seed sets and objectives as the offline tool.
func (s *Server) handleSolve(problem string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if problem == "self" {
			s.nSelf.Add(1)
		} else {
			s.nComp.Add(1)
		}
		var req solveRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		d, ok := s.lookupDataset(w, req.Dataset)
		if !ok {
			return
		}
		gap := d.GAP
		if req.GAP != nil {
			gap = req.GAP.toGAP()
		}
		if err := gap.Validate(); err != nil {
			s.httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if req.K <= 0 || req.K > s.cfg.MaxK {
			s.httpError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1,%d], got %d", s.cfg.MaxK, req.K))
			return
		}
		if req.FixedTheta > s.cfg.MaxTheta || req.MaxTheta > s.cfg.MaxTheta {
			s.httpError(w, http.StatusBadRequest, fmt.Sprintf("theta budget exceeds limit %d", s.cfg.MaxTheta))
			return
		}
		if req.EvalRuns <= 0 {
			// Make the 10000-run solver default explicit so the cap below
			// governs it too (clamped, like the spread default).
			req.EvalRuns = min(10000, s.cfg.MaxRuns)
		}
		if req.EvalRuns > s.cfg.MaxRuns {
			s.httpError(w, http.StatusBadRequest, fmt.Sprintf("evalRuns %d exceeds limit %d", req.EvalRuns, s.cfg.MaxRuns))
			return
		}
		var opposite []int32
		switch problem {
		case "self":
			if len(req.SeedsA) > 0 {
				s.httpError(w, http.StatusBadRequest, "selfinfmax selects the A-seeds; pass the fixed B-seeds as seedsB")
				return
			}
			opposite = req.SeedsB
		case "comp":
			if len(req.SeedsB) > 0 {
				s.httpError(w, http.StatusBadRequest, "compinfmax selects the B-seeds; pass the fixed A-seeds as seedsA")
				return
			}
			opposite = req.SeedsA
		}
		if !s.checkSeeds(w, d, opposite, "opposite seeds") {
			return
		}

		cfg := sandwich.NewConfig(req.K)
		if req.Epsilon > 0 {
			cfg.TIM.Epsilon = req.Epsilon
		}
		cfg.TIM.FixedTheta = req.FixedTheta
		cfg.TIM.MaxTheta = s.cfg.MaxTheta // operator cap applies to derived theta too
		if req.MaxTheta > 0 {
			cfg.TIM.MaxTheta = req.MaxTheta
		}
		if req.EvalRuns > 0 {
			cfg.EvalRuns = req.EvalRuns
		}
		// Default seed 1 only when the field is absent: an explicit
		// "seed": 0 is a legitimate master seed and must round-trip, the
		// same determinism contract /v1/spread and /v1/boost honor.
		cfg.Seed = 1
		if req.Seed != nil {
			cfg.Seed = *req.Seed
		}
		cfg.TIM.Workers = s.cfg.Workers
		cfg.Collections = s.index
		cfg.GraphID = req.Dataset

		t0 := time.Now()
		var res *sandwich.Result
		var err error
		if problem == "self" {
			res, err = sandwich.SolveSelfInfMax(d.Graph, gap, opposite, cfg)
		} else {
			res, err = sandwich.SolveCompInfMax(d.Graph, gap, opposite, cfg)
		}
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrBuildPanic) {
				code = http.StatusInternalServerError
			}
			s.httpError(w, code, err.Error())
			return
		}
		out := solveResponse{
			Dataset:    req.Dataset,
			Problem:    problem,
			K:          req.K,
			Seed:       cfg.Seed,
			Seeds:      res.Seeds,
			Objective:  res.Objective,
			Chosen:     res.Chosen,
			UpperRatio: res.UpperRatio,
			ElapsedMs:  msSince(t0),
		}
		for _, c := range res.Candidates {
			sc := solveCandidate{Name: c.Name, Seeds: c.Seeds, Objective: c.Objective}
			if c.Stats != nil {
				sc.Theta = c.Stats.Theta
			}
			out.Candidates = append(out.Candidates, sc)
		}
		writeJSON(w, http.StatusOK, out)
	}
}

// --- shared plumbing ---

// decodeBody enforces POST + JSON with unknown fields rejected.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) lookupDataset(w http.ResponseWriter, name string) (*datasets.Dataset, bool) {
	d, ok := s.cfg.Datasets[name]
	if !ok {
		s.httpError(w, http.StatusNotFound,
			fmt.Sprintf("unknown dataset %q (have %v)", name, s.datasetNames()))
		return nil, false
	}
	return d, true
}

func (s *Server) checkSeeds(w http.ResponseWriter, d *datasets.Dataset, seeds []int32, what string) bool {
	n := int32(d.Graph.N())
	for _, v := range seeds {
		if v < 0 || v >= n {
			s.httpError(w, http.StatusBadRequest,
				fmt.Sprintf("%s: node %d out of range [0,%d)", what, v, n))
			return false
		}
	}
	return true
}

func (s *Server) datasetNames() []string {
	names := make([]string, 0, len(s.cfg.Datasets))
	for name := range s.cfg.Datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (s *Server) httpError(w http.ResponseWriter, code int, msg string) {
	s.nErrors.Add(1)
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
