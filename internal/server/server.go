// Package server implements the comic query-serving layer: a JSON-over-HTTP
// API that answers Com-IC spread, boost, SelfInfMax and CompInfMax queries
// over a dynamic inventory of graphs, amortizing RR-set generation — the
// dominant cost of the TIM-style solvers — behind a shared Index cache.
//
// Endpoints (all request/response bodies are JSON):
//
//	POST   /v1/spread       Monte-Carlo σ_A and σ_B for given seed sets
//	POST   /v1/boost        paired-world CompInfMax objective estimate
//	POST   /v1/selfinfmax   Problem 1 solve (RR-SIM+ + sandwich approximation)
//	POST   /v1/compinfmax   Problem 2 solve (RR-CIM on the q_{B|A}→1 bound)
//	POST   /v1/batch        many queries, one request, shared RR-set builds
//	POST   /v1/jobs         submit a batch asynchronously (worker pool)
//	GET    /v1/jobs         list retained jobs
//	GET    /v1/jobs/{id}    poll a job's status and result
//	DELETE /v1/jobs/{id}    cancel a queued/running job, discard a finished one
//	POST   /v1/graphs       upload a text edge-list graph (+optional GAP)
//	GET    /v1/graphs       list registered graphs
//	GET    /v1/graphs/{name}    describe one graph
//	DELETE /v1/graphs/{name}    retire a graph (drops its cached RR sets)
//	PATCH  /v1/graphs/{name}/edges  apply a batch of edge updates (add /
//	                            remove / reweight), advancing the graph's
//	                            edit generation and incrementally repairing
//	                            its cached RR-set collections
//	GET    /healthz         liveness probe
//	GET    /v1/stats        cache and request counters, graph inventory
//
// Determinism: a solve request with master seed s returns exactly the seed
// set the offline cmd/comic-seeds tool prints for the same graph, GAPs,
// opposite seeds and budget parameters — whether the RR-set collections
// come out of the cache (warm) or are generated on the fly (cold), and
// whether the query arrives alone, inside a /v1/batch, or through a
// /v1/jobs submission. The cache can therefore be introduced, sized, or
// flushed without changing any response body, only latencies.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"comic/internal/core"
	"comic/internal/datasets"
	"comic/internal/graph"
	"comic/internal/montecarlo"
	"comic/internal/solver"
)

// Config configures a Server.
type Config struct {
	// Datasets maps the names accepted in request bodies to the networks
	// (with their default GAPs) the server answers queries on. They become
	// pre-registered graph-registry entries; clients may add more at
	// runtime through POST /v1/graphs. At least one is required.
	Datasets map[string]*datasets.Dataset
	// CacheBytes bounds the RR-set index (exact resident bytes).
	// 0 means the 1 GiB default — cache keys include client-controlled
	// fields (seed, GAP, opposite seeds), so an unbounded index is a
	// remote memory-growth vector. Negative means explicitly unbounded.
	CacheBytes int64
	// MaxConcurrentBuilds bounds how many RR-set collection builds may
	// run at once; queued builds wait their turn. The cache byte budget
	// covers only resident collections, so without this bound N
	// concurrent distinct queries hold N full collections in flight.
	// Job workers share the same semaphore. 0 means the default of 4;
	// negative means unbounded.
	MaxConcurrentBuilds int
	// MaxK caps the per-request seed-set size (default 500). Requests are
	// additionally capped at the target graph's node count: k must lie in
	// [1, min(MaxK, n)].
	MaxK int
	// MaxRuns caps per-request Monte-Carlo budgets (default 200000).
	MaxRuns int
	// MaxTheta caps per-request RR-set budgets (default 2000000).
	MaxTheta int
	// GreedyRuns is the default Monte-Carlo budget per greedy objective
	// evaluation for solves routed to the mc-greedy fallback (default
	// 200); requests may override it with "greedyRuns", bounded by
	// MaxRuns.
	GreedyRuns int
	// MaxGreedyNodes caps the greedy fallback's ground set to the
	// highest-out-degree nodes (default 512, never below the request's
	// k). Greedy cost scales with ground-set × GreedyRuns simulations, so
	// this is the knob bounding worst-case solve cost for non-submodular
	// regimes. Negative disables the fallback: those regimes then get
	// HTTP 400 naming the regime instead of a solve.
	MaxGreedyNodes int
	// Workers bounds solver parallelism per request (default GOMAXPROCS).
	Workers int

	// MaxBatch caps the number of queries in one /v1/batch request or one
	// job (default 256). The batch/jobs request-body byte limit scales
	// with it (64 KiB per permitted query, minimum 1 MiB).
	MaxBatch int
	// MaxJobs is the async worker-pool size: how many jobs execute
	// concurrently (default 2).
	MaxJobs int
	// MaxQueuedJobs bounds jobs waiting for a worker; submissions beyond
	// it are rejected with 429 (default 64).
	MaxQueuedJobs int
	// RetainedJobs bounds finished jobs kept for polling; the oldest are
	// discarded first (default 256).
	RetainedJobs int

	// MaxGraphs caps the registry size, uploads included (default 64).
	MaxGraphs int
	// MaxUploadBytes caps a POST /v1/graphs body (default 32 MiB).
	MaxUploadBytes int64
	// MaxUploadNodes caps the declared node count of an uploaded edge
	// list (default 2,000,000). The header's node count alone drives CSR
	// allocation — ~12 bytes per node before a single edge — so without
	// this bound a few-byte body could demand gigabytes.
	MaxUploadNodes int

	// StateDir, when non-empty, makes the server's expensive state
	// persistent: dynamically added graphs are written there as they are
	// registered, and SaveState (called by the periodic snapshot loop and
	// on graceful shutdown) snapshots the RR-set index, so a restarted
	// server warm-starts with its uploaded graphs and cached collections
	// intact instead of paying the full cold-solve cost again. New()
	// restores whatever valid state the directory holds; corrupt or stale
	// entries are skipped and counted (IndexStats.RestoreRejects), never
	// served. Empty means fully in-memory (the previous behavior).
	StateDir string
	// SnapshotInterval, when positive and StateDir is set, snapshots the
	// RR-set index on that cadence in the background. Zero means snapshot
	// only on graceful shutdown (and explicit SaveState calls).
	SnapshotInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 1 << 30
	}
	if c.MaxConcurrentBuilds == 0 {
		c.MaxConcurrentBuilds = 4
	}
	if c.MaxK <= 0 {
		c.MaxK = 500
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 200000
	}
	if c.MaxTheta <= 0 {
		c.MaxTheta = 2_000_000
	}
	if c.GreedyRuns <= 0 {
		c.GreedyRuns = 200
	}
	if c.MaxGreedyNodes == 0 {
		c.MaxGreedyNodes = solver.DefaultMaxGreedyNodes
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.MaxQueuedJobs <= 0 {
		c.MaxQueuedJobs = 64
	}
	if c.RetainedJobs <= 0 {
		c.RetainedJobs = 256
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 64
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 32 << 20
	}
	if c.MaxUploadNodes <= 0 {
		c.MaxUploadNodes = 2_000_000
	}
	return c
}

// Server answers comic queries over HTTP. Create one with New; it
// implements http.Handler and is safe for concurrent use. Call Close when
// done to stop the async job workers (Serve/ServeListener do it on
// shutdown).
type Server struct {
	cfg       Config
	index     *Index
	reg       *registry
	jobs      *jobQueue
	mux       *http.ServeMux
	started   time.Time
	closeOnce sync.Once
	snapStop  chan struct{} // non-nil: closing stops the snapshot loop
	snapDone  chan struct{}

	// clusterInfo, when set (SetClusterInfo), contributes a "cluster"
	// section to /healthz and /v1/stats: node identity, membership view,
	// snapshot-store reachability, router counters. The server itself
	// knows nothing about clustering; the hook keeps the dependency
	// pointing from the cluster layer down.
	clusterInfo atomic.Value // of func() map[string]any

	// Request counters, incremented only after a request (or batch/job
	// query) passes validation: rejected requests count as errors, not as
	// served queries.
	nSpread, nBoost, nSelf, nComp atomic.Int64
	nBatch, nJobs, nGraphs        atomic.Int64
	nErrors                       atomic.Int64
	// nRegime counts validated solve queries per GAP regime (indexed by
	// core.Regime), surfaced as the "regimes" map on /v1/stats.
	nRegime [core.RegimeGeneral + 1]atomic.Int64
}

// New validates cfg and returns a ready-to-serve Server with the
// configured datasets pre-registered. With Config.StateDir set, the
// server additionally restores whatever valid persisted state the
// directory holds — dynamically added graphs re-registered under their
// original cache IDs, and the RR-set index rehydrated from its last
// snapshot — so the first queries after a restart are warm.
func New(cfg Config) (*Server, error) {
	if len(cfg.Datasets) == 0 {
		return nil, errors.New("server: Config.Datasets must name at least one dataset")
	}
	for name, d := range cfg.Datasets {
		if d == nil || d.Graph == nil {
			return nil, fmt.Errorf("server: dataset %q has no graph", name)
		}
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		index:   NewIndex(cfg.CacheBytes),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.index.SetBuildLimit(cfg.MaxConcurrentBuilds)
	// Memoize CELF orderings deep enough to answer any k the API admits;
	// every solve then routes selection through the order memo.
	s.index.SetMaxOrderK(cfg.MaxK)
	graphsDir := ""
	if cfg.StateDir != "" {
		graphsDir = stateGraphsDir(cfg.StateDir)
		if err := os.MkdirAll(graphsDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: creating state dir: %v", err)
		}
	}
	s.reg = newRegistry(s.index, graphsDir)

	// Persisted registry identities, by graph name. Config datasets reuse
	// their old cache ID when the rebuilt graph's content fingerprint still
	// matches; everything else re-registers fresh (and the stale snapshot
	// entries keyed by the dead ID are rejected at index load).
	var metas map[string]graphMeta
	if graphsDir != "" {
		metas = readGraphMetas(graphsDir)
	}
	names := make([]string, 0, len(cfg.Datasets))
	for name := range cfg.Datasets {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic generation assignment
	for _, name := range names {
		d := cfg.Datasets[name]
		if m, ok := metas[name]; ok {
			delete(metas, name)
			restored := false
			if m.Source == "preloaded" {
				if m.GraphGen > 0 {
					// The persisted graph was patched past the configured
					// loader's generation 0: its topology lives in the edge
					// file, not in Config.
					if pd := restoreDynamicGraph(graphsDir, m, cfg.MaxUploadNodes); pd != nil {
						restored = s.reg.restore(restoredEntry(m, pd), 0) == nil
					}
				} else if m.Nodes == d.Graph.N() && m.Edges == d.Graph.M() &&
					m.Fingerprint == graphFingerprint(d.Graph) {
					restored = s.reg.restore(restoredEntry(m, d), 0) == nil
				}
			}
			if restored {
				continue
			}
			s.reg.fenceGen(m.Gen)
		}
		if _, err := s.reg.register(name, d, "preloaded", 0); err != nil {
			return nil, fmt.Errorf("server: %v", err)
		}
	}
	// Restore dynamically added graphs (uploads, in-process registrations).
	for _, name := range sortedMetaNames(metas) {
		m := metas[name]
		s.reg.fenceGen(m.Gen)
		d := restoreDynamicGraph(graphsDir, m, cfg.MaxUploadNodes)
		if d == nil {
			continue // corrupt or fingerprint-mismatched edge file: skip
		}
		if err := s.reg.restore(restoredEntry(m, d), cfg.MaxGraphs); err != nil {
			continue
		}
	}
	// Rehydrate the RR-set index against the restored graph inventory,
	// keyed by each entry's current versioned GraphID.
	if cfg.StateDir != "" {
		if _, err := s.index.LoadSnapshot(stateIndexDir(cfg.StateDir), s.reg.currentGraphsByID()); err != nil {
			return nil, fmt.Errorf("server: loading RR-index snapshot: %v", err)
		}
	}

	s.jobs = newJobQueue(s.runBatch, cfg.MaxJobs, cfg.MaxQueuedJobs, cfg.RetainedJobs)
	if cfg.StateDir != "" && cfg.SnapshotInterval > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(cfg.SnapshotInterval)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/spread", s.handleSpread)
	s.mux.HandleFunc("/v1/boost", s.handleBoost)
	s.mux.HandleFunc("/v1/selfinfmax", s.handleSolve("self"))
	s.mux.HandleFunc("/v1/compinfmax", s.handleSolve("comp"))
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/{id}", s.handleJobByID)
	s.mux.HandleFunc("/v1/graphs", s.handleGraphs)
	s.mux.HandleFunc("/v1/graphs/{name}", s.handleGraphByName)
	s.mux.HandleFunc("/v1/graphs/{name}/edges", s.handleGraphEdges)
	return s, nil
}

// restoredEntry rebuilds a registry entry (and its single current version)
// from a persisted graphMeta and the resolved dataset.
func restoredEntry(m graphMeta, d *datasets.Dataset) *regEntry {
	return &regEntry{
		name:    m.Name,
		cacheID: m.CacheID,
		gen:     m.Gen,
		source:  m.Source,
		created: m.Created,
		cur: &graphVersion{
			d:           d,
			gen:         m.GraphGen,
			id:          versionedID(m.CacheID, m.GraphGen),
			fingerprint: m.Fingerprint,
		},
	}
}

// ServeHTTP dispatches to the v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Index exposes the server's RR-set cache (for stats or for sharing with
// in-process solves).
func (s *Server) Index() *Index { return s.index }

// SetClusterInfo installs the function that renders the "cluster" section
// of /healthz and /v1/stats — node identity, membership view, snapshot-
// store reachability, router counters. Called once by the cluster layer
// when it wraps the server; fn must be safe for concurrent use.
func (s *Server) SetClusterInfo(fn func() map[string]any) { s.clusterInfo.Store(fn) }

// clusterSection returns the installed cluster info, or nil when the
// server is not running in cluster mode.
func (s *Server) clusterSection() map[string]any {
	if fn, ok := s.clusterInfo.Load().(func() map[string]any); ok && fn != nil {
		return fn()
	}
	return nil
}

// UploadByteLimit reports the configured request-body cap for graph
// uploads and edge patches, so the routing tier can bound the bodies it
// buffers for proxying with the same limit the serving node enforces.
func (s *Server) UploadByteLimit() int64 { return s.cfg.MaxUploadBytes }

// Close stops the async job workers — pending and running jobs are
// canceled and the pool is drained — and the periodic snapshot loop, if
// one is running. In-flight synchronous requests are unaffected. Close
// does not take a final snapshot; call SaveState first when shutting down
// (Serve/ServeListener do) if the latest index contents should persist.
// Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.snapStop != nil {
			close(s.snapStop)
			<-s.snapDone
		}
		s.jobs.close()
	})
}

// SaveState snapshots the RR-set index into the configured StateDir
// (graphs are persisted incrementally as they are registered, so the index
// snapshot is the only deferred piece). It returns an error when no
// StateDir is configured. Safe for concurrent use; failures are also
// counted in IndexStats.SnapshotErrors.
func (s *Server) SaveState() error {
	if s.cfg.StateDir == "" {
		return errNoStateDir
	}
	return s.index.SaveSnapshot(stateIndexDir(s.cfg.StateDir))
}

// snapshotLoop snapshots the index every interval until Close. Errors are
// not fatal — the next tick retries — and are visible to operators as
// IndexStats.SnapshotErrors via /v1/stats.
func (s *Server) snapshotLoop(interval time.Duration) {
	defer close(s.snapDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-t.C:
			_ = s.SaveState()
		}
	}
}

// RegisterGraph adds a graph to the server's registry under the given
// name, exactly as a POST /v1/graphs upload would: queries may target it
// immediately. The dataset's GAP is its default GAP for queries that don't
// override one. It fails if the name is already registered or the graph
// limit is reached.
func (s *Server) RegisterGraph(name string, d *datasets.Dataset) error {
	if d == nil || d.Graph == nil {
		return fmt.Errorf("server: graph %q is nil", name)
	}
	if err := d.GAP.Validate(); err != nil {
		return fmt.Errorf("server: graph %q: %v", name, err)
	}
	_, err := s.reg.register(name, d, "registered", s.cfg.MaxGraphs)
	if err != nil {
		return fmt.Errorf("server: %v", err)
	}
	return nil
}

// UnregisterGraph retires a graph, exactly as DELETE /v1/graphs/{name}
// would: new queries get 404 immediately, in-flight queries finish, and
// the graph's cached RR-set collections are dropped once the last
// in-flight query releases it. It reports whether the name was registered.
func (s *Server) UnregisterGraph(name string) bool {
	_, ok := s.reg.remove(name)
	return ok
}

// GraphNames lists the currently registered graph names, sorted.
func (s *Server) GraphNames() []string { return s.reg.names() }

// Serve builds a Server from cfg and runs it on addr until ctx is canceled,
// then shuts down gracefully, draining in-flight requests for up to ten
// seconds. It returns http.ErrServerClosed-free: nil on clean shutdown.
func Serve(ctx context.Context, addr string, cfg Config) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, l, cfg)
}

// ServeListener is Serve on an already-bound listener, for callers that
// need to know the port before serving (e.g. addr ":0" in tests). It takes
// ownership of l.
func ServeListener(ctx context.Context, l net.Listener, cfg Config) error {
	s, err := New(cfg)
	if err != nil {
		//comic:allow errlost boot already failed; the config error is what the caller needs
		l.Close()
		return err
	}
	defer s.Close()
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		// Snapshot-on-shutdown: with a StateDir configured, the drained
		// server persists its RR-set index so the next boot starts warm.
		if cfg.StateDir != "" {
			if err := s.SaveState(); err != nil {
				return fmt.Errorf("server: shutdown snapshot: %w", err)
			}
		}
		return nil
	}
}

// --- request/response payloads ---

// gapPayload is the wire form of a GAP; absent → the dataset's learned GAP.
type gapPayload struct {
	QA0 float64 `json:"qa0"`
	QAB float64 `json:"qab"`
	QB0 float64 `json:"qb0"`
	QBA float64 `json:"qba"`
}

func (p *gapPayload) toGAP() core.GAP {
	return core.GAP{QA0: p.QA0, QAB: p.QAB, QB0: p.QB0, QBA: p.QBA}
}

// estimateRequest is the body of /v1/spread and /v1/boost.
type estimateRequest struct {
	Dataset string      `json:"dataset"`
	GAP     *gapPayload `json:"gap,omitempty"`
	SeedsA  []int32     `json:"seedsA,omitempty"`
	SeedsB  []int32     `json:"seedsB,omitempty"`
	Runs    int         `json:"runs,omitempty"`
	Seed    *uint64     `json:"seed,omitempty"`
}

// spreadResponse is the body returned by /v1/spread.
type spreadResponse struct {
	Dataset   string  `json:"dataset"`
	MeanA     float64 `json:"meanA"`
	StderrA   float64 `json:"stderrA"`
	MeanB     float64 `json:"meanB"`
	StderrB   float64 `json:"stderrB"`
	Runs      int     `json:"runs"`
	Seed      uint64  `json:"seed"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// boostResponse is the body returned by /v1/boost.
type boostResponse struct {
	Dataset   string  `json:"dataset"`
	Boost     float64 `json:"boost"`
	Stderr    float64 `json:"stderr"`
	Runs      int     `json:"runs"`
	Seed      uint64  `json:"seed"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// solveRequest is the body of /v1/selfinfmax (uses SeedsB as the fixed
// opposite set) and /v1/compinfmax (uses SeedsA).
type solveRequest struct {
	Dataset    string      `json:"dataset"`
	GAP        *gapPayload `json:"gap,omitempty"`
	K          int         `json:"k"`
	SeedsA     []int32     `json:"seedsA,omitempty"`
	SeedsB     []int32     `json:"seedsB,omitempty"`
	Epsilon    float64     `json:"epsilon,omitempty"`
	FixedTheta int         `json:"fixedTheta,omitempty"`
	MaxTheta   int         `json:"maxTheta,omitempty"`
	EvalRuns   int         `json:"evalRuns,omitempty"`
	// GreedyRuns overrides the server's default Monte-Carlo budget per
	// greedy evaluation when the planner routes to the mc-greedy fallback
	// (bounded by MaxRuns; ignored on submodular routes).
	GreedyRuns int     `json:"greedyRuns,omitempty"`
	Seed       *uint64 `json:"seed,omitempty"`
}

// solveCandidate is one sandwich candidate in a solveResponse.
type solveCandidate struct {
	Name      string  `json:"name"`
	Seeds     []int32 `json:"seeds"`
	Objective float64 `json:"objective"`
	Theta     int     `json:"theta,omitempty"`
}

// planPayload is the wire form of a solver.Plan: how the planner routed
// the request's GAP.
type planPayload struct {
	Regime    string `json:"regime"`
	Algorithm string `json:"algorithm"`
	Guarantee string `json:"guarantee"`
	Reason    string `json:"reason"`
}

// solveResponse is the body returned by the solve endpoints.
type solveResponse struct {
	Dataset string `json:"dataset"`
	// Graph is the unified resource representation of the graph version the
	// solve actually computed on — its generation and fingerprint pin the
	// topology, so a client can detect that a concurrent PATCH landed (and
	// use Generation as an ifGeneration precondition for its own patch).
	Graph      graphInfo        `json:"graph"`
	Problem    string           `json:"problem"`
	K          int              `json:"k"`
	Seed       uint64           `json:"seed"`
	Seeds      []int32          `json:"seeds"`
	Objective  float64          `json:"objective"`
	Chosen     string           `json:"chosen"`
	UpperRatio float64          `json:"upperRatio,omitempty"`
	Plan       planPayload      `json:"plan"`
	Candidates []solveCandidate `json:"candidates"`
	ElapsedMs  float64          `json:"elapsedMs"`
}

// statsResponse is the body returned by /v1/stats. The per-endpoint
// request counters cover accepted (validated) requests only; rejected
// requests are counted once, under "errors".
type statsResponse struct {
	UptimeSeconds float64          `json:"uptimeSeconds"`
	Index         IndexStats       `json:"index"`
	Requests      map[string]int64 `json:"requests"`
	// Regimes counts validated solve queries by the GAP regime the
	// planner classified them into (all six regimes always present).
	Regimes  map[string]int64 `json:"regimes"`
	Jobs     []jobStatus      `json:"jobs,omitempty"`
	Datasets []graphInfo      `json:"datasets"`
	// Cluster is present in cluster mode only: node identity, membership
	// view, snapshot-store reachability, and the router's proxy /
	// singleflight / rebalance counters (see SetClusterInfo).
	Cluster map[string]any `json:"cluster,omitempty"`
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	payload := map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.started).Seconds(),
		"datasets":      s.reg.names(),
	}
	if cs := s.clusterSection(); cs != nil {
		payload["cluster"] = cs
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	infos := s.reg.infos()
	regimes := make(map[string]int64, len(core.Regimes()))
	for _, r := range core.Regimes() {
		regimes[r.String()] = s.nRegime[r].Load()
	}
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Index:         s.index.Stats(),
		Regimes:       regimes,
		Requests: map[string]int64{
			"spread":     s.nSpread.Load(),
			"boost":      s.nBoost.Load(),
			"selfinfmax": s.nSelf.Load(),
			"compinfmax": s.nComp.Load(),
			"batch":      s.nBatch.Load(),
			"jobs":       s.nJobs.Load(),
			"graphs":     s.nGraphs.Load(),
			"errors":     s.nErrors.Load(),
		},
		Jobs:     s.jobs.list(),
		Datasets: infos,
		Cluster:  s.clusterSection(),
	})
}

func (s *Server) handleSpread(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req estimateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	out, aerr := s.runSpread(&req)
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleBoost(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req estimateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	out, aerr := s.runBoost(&req)
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSolve returns the handler for one of the two seed-selection
// problems.
func (s *Server) handleSolve(problem string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.requireMethod(w, r, http.MethodPost) {
			return
		}
		var req solveRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		out, aerr := s.runSolve(problem, &req)
		if aerr != nil {
			s.writeErr(w, aerr)
			return
		}
		writeJSON(w, http.StatusOK, out)
	}
}

// --- query execution (shared by endpoints, /v1/batch and /v1/jobs) ---

// validateEstimate validates the shared body of the two Monte-Carlo
// queries, filling in defaults (runs 10000, seed 1). On success it returns
// the pinned graph reference — the caller must release it after use.
func (s *Server) validateEstimate(req *estimateRequest) (*graphRef, core.GAP, *apiError) {
	ref, aerr := s.acquireGraph(req.Dataset)
	if aerr != nil {
		return nil, core.GAP{}, aerr
	}
	gap := ref.gap()
	if req.GAP != nil {
		gap = req.GAP.toGAP()
	}
	if err := gap.Validate(); err != nil {
		s.reg.release(ref)
		return nil, core.GAP{}, s.fail(http.StatusBadRequest, codeInvalidArgument, "%s", err.Error())
	}
	if req.Runs <= 0 {
		// The default is clamped to the cap; only explicit client values
		// above it are rejected.
		req.Runs = min(10000, s.cfg.MaxRuns)
	}
	if req.Runs > s.cfg.MaxRuns {
		s.reg.release(ref)
		return nil, core.GAP{}, s.fail(http.StatusBadRequest, codeInvalidArgument,
			"runs %d exceeds limit %d", req.Runs, s.cfg.MaxRuns)
	}
	if req.Seed == nil {
		one := uint64(1)
		req.Seed = &one
	}
	if aerr := s.checkSeeds(ref.graph(), req.SeedsA, "seedsA"); aerr != nil {
		s.reg.release(ref)
		return nil, core.GAP{}, aerr
	}
	if aerr := s.checkSeeds(ref.graph(), req.SeedsB, "seedsB"); aerr != nil {
		s.reg.release(ref)
		return nil, core.GAP{}, aerr
	}
	return ref, gap, nil
}

// runSpread validates and executes one spread query.
func (s *Server) runSpread(req *estimateRequest) (*spreadResponse, *apiError) {
	ref, gap, aerr := s.validateEstimate(req)
	if aerr != nil {
		return nil, aerr
	}
	defer s.reg.release(ref)
	s.nSpread.Add(1)
	t0 := time.Now()
	est := montecarlo.New(ref.graph(), gap)
	est.Workers = s.cfg.Workers
	res := est.Estimate(req.SeedsA, req.SeedsB, req.Runs, *req.Seed)
	return &spreadResponse{
		Dataset: req.Dataset,
		MeanA:   res.MeanA, StderrA: res.StderrA,
		MeanB: res.MeanB, StderrB: res.StderrB,
		Runs: res.Runs, Seed: *req.Seed,
		ElapsedMs: msSince(t0),
	}, nil
}

// runBoost validates and executes one boost query.
func (s *Server) runBoost(req *estimateRequest) (*boostResponse, *apiError) {
	ref, gap, aerr := s.validateEstimate(req)
	if aerr != nil {
		return nil, aerr
	}
	defer s.reg.release(ref)
	if len(req.SeedsB) == 0 {
		return nil, s.fail(http.StatusBadRequest, codeInvalidArgument, "boost requires a non-empty seedsB")
	}
	s.nBoost.Add(1)
	t0 := time.Now()
	est := montecarlo.New(ref.graph(), gap)
	est.Workers = s.cfg.Workers
	mean, stderr := est.BoostPaired(req.SeedsA, req.SeedsB, req.Runs, *req.Seed)
	return &boostResponse{
		Dataset: req.Dataset,
		Boost:   mean, Stderr: stderr,
		Runs: req.Runs, Seed: *req.Seed,
		ElapsedMs: msSince(t0),
	}, nil
}

// runSolve validates and executes one seed-selection query. The solver
// configuration mirrors cmd/comic-seeds exactly (epsilon 0.5, 10000
// evaluation runs, seed 1 by default), so a warm cache answer selects the
// same seed sets and objectives as the offline tool.
func (s *Server) runSolve(problem string, req *solveRequest) (*solveResponse, *apiError) {
	ref, aerr := s.acquireGraph(req.Dataset)
	if aerr != nil {
		return nil, aerr
	}
	defer s.reg.release(ref)
	gap := ref.gap()
	if req.GAP != nil {
		gap = req.GAP.toGAP()
	}
	if err := gap.Validate(); err != nil {
		return nil, s.fail(http.StatusBadRequest, codeInvalidArgument, "%s", err.Error())
	}
	// k is capped by both the operator limit and the graph: more seeds
	// than nodes would push k > n into the θ machinery (where ln C(n,k)
	// degenerates) and ask selection for more distinct nodes than exist.
	n := ref.graph().N()
	if maxK := min(s.cfg.MaxK, n); req.K <= 0 || req.K > maxK {
		return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
			"k must be in [1, min(maxK %d, n %d)] = [1, %d], got %d", s.cfg.MaxK, n, maxK, req.K)
	}
	if req.FixedTheta > s.cfg.MaxTheta || req.MaxTheta > s.cfg.MaxTheta {
		return nil, s.fail(http.StatusBadRequest, codeInvalidArgument, "theta budget exceeds limit %d", s.cfg.MaxTheta)
	}
	if req.EvalRuns <= 0 {
		// Make the 10000-run solver default explicit so the cap below
		// governs it too (clamped, like the spread default).
		req.EvalRuns = min(10000, s.cfg.MaxRuns)
	}
	if req.EvalRuns > s.cfg.MaxRuns {
		return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
			"evalRuns %d exceeds limit %d", req.EvalRuns, s.cfg.MaxRuns)
	}
	if req.GreedyRuns < 0 || req.GreedyRuns > s.cfg.MaxRuns {
		return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
			"greedyRuns %d outside [0, %d]", req.GreedyRuns, s.cfg.MaxRuns)
	}
	var opposite []int32
	switch problem {
	case "self":
		if len(req.SeedsA) > 0 {
			return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
				"selfinfmax selects the A-seeds; pass the fixed B-seeds as seedsB")
		}
		opposite = req.SeedsB
	case "comp":
		if len(req.SeedsB) > 0 {
			return nil, s.fail(http.StatusBadRequest, codeInvalidArgument,
				"compinfmax selects the B-seeds; pass the fixed A-seeds as seedsA")
		}
		opposite = req.SeedsA
	}
	if aerr := s.checkSeeds(ref.graph(), opposite, "opposite seeds"); aerr != nil {
		return nil, aerr
	}
	if problem == "self" {
		s.nSelf.Add(1)
	} else {
		s.nComp.Add(1)
	}
	if r := gap.Regime(); r <= core.RegimeGeneral {
		s.nRegime[r].Add(1)
	}

	cfg := solver.NewConfig(req.K)
	if req.Epsilon > 0 {
		cfg.TIM.Epsilon = req.Epsilon
	}
	cfg.TIM.FixedTheta = req.FixedTheta
	cfg.TIM.MaxTheta = s.cfg.MaxTheta // operator cap applies to derived theta too
	if req.MaxTheta > 0 {
		cfg.TIM.MaxTheta = req.MaxTheta
	}
	if req.EvalRuns > 0 {
		cfg.EvalRuns = req.EvalRuns
	}
	cfg.GreedyRuns = s.cfg.GreedyRuns
	if req.GreedyRuns > 0 {
		cfg.GreedyRuns = req.GreedyRuns
	}
	cfg.MaxGreedyNodes = s.cfg.MaxGreedyNodes
	// Default seed 1 only when the field is absent: an explicit
	// "seed": 0 is a legitimate master seed and must round-trip, the
	// same determinism contract /v1/spread and /v1/boost honor.
	cfg.Seed = 1
	if req.Seed != nil {
		cfg.Seed = *req.Seed
	}
	cfg.TIM.Workers = s.cfg.Workers
	cfg.Collections = s.index
	// The versioned cache ID ("<registration>#<gen>@<edit-gen>", never the
	// client-visible name) keys the index: a name reused after DELETE can
	// never alias the retired graph's collections, and a patched graph can
	// never serve the previous topology's collections.
	cfg.GraphID = ref.id()

	t0 := time.Now()
	var res *solver.Result
	var err error
	if problem == "self" {
		res, err = solver.SolveSelfInfMax(ref.graph(), gap, opposite, cfg)
	} else {
		res, err = solver.SolveCompInfMax(ref.graph(), gap, opposite, cfg)
	}
	if err != nil {
		// An unsupported regime (greedy fallback disabled by the operator)
		// is the client's request shape, not a server fault: 400, naming
		// the regime. Only a panicking build is a 500.
		var ure *solver.UnsupportedRegimeError
		switch {
		case errors.Is(err, ErrBuildPanic):
			return nil, s.fail(http.StatusInternalServerError, codeInternal, "%s", err.Error())
		case errors.As(err, &ure):
			return nil, s.fail(http.StatusBadRequest, codeUnsupportedRegime, "%s", err.Error()).
				withDetails(map[string]any{"regime": ure.Regime.String(), "problem": ure.Problem})
		default:
			return nil, s.fail(http.StatusBadRequest, codeInvalidArgument, "%s", err.Error())
		}
	}
	out := &solveResponse{
		Dataset:    req.Dataset,
		Graph:      ref.info(),
		Problem:    problem,
		K:          req.K,
		Seed:       cfg.Seed,
		Seeds:      res.Seeds,
		Objective:  res.Objective,
		Chosen:     res.Chosen,
		UpperRatio: res.UpperRatio,
		Plan: planPayload{
			Regime:    res.Plan.Regime.String(),
			Algorithm: string(res.Plan.Algorithm),
			Guarantee: res.Plan.Guarantee,
			Reason:    res.Plan.Reason,
		},
		ElapsedMs: msSince(t0),
	}
	for _, c := range res.Candidates {
		sc := solveCandidate{Name: c.Name, Seeds: c.Seeds, Objective: c.Objective}
		if c.Stats != nil {
			sc.Theta = c.Stats.Theta
		}
		out.Candidates = append(out.Candidates, sc)
	}
	return out, nil
}

// --- shared plumbing ---

// decodeBody parses a JSON request body with unknown fields rejected,
// bounded at 1 MiB (graph uploads and edge patches use decodeBodyLimit
// with the larger upload cap). The HTTP method is the handler's business,
// gated before the body is touched (requireMethod / methodNotAllowed).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	return s.decodeBodyLimit(w, r, dst, 1<<20)
}

func (s *Server) decodeBodyLimit(w http.ResponseWriter, r *http.Request, dst any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.httpError(w, http.StatusBadRequest, codeInvalidArgument, "bad request body: "+err.Error())
		return false
	}
	return true
}

// acquireGraph resolves a dataset/graph name through the registry,
// pinning its current version; the caller must release the returned ref.
func (s *Server) acquireGraph(name string) (*graphRef, *apiError) {
	ref, ok := s.reg.acquire(name)
	if !ok {
		return nil, s.fail(http.StatusNotFound, codeGraphNotFound,
			"unknown dataset %q (have %v)", name, s.reg.names())
	}
	return ref, nil
}

func (s *Server) checkSeeds(g *graph.Graph, seeds []int32, what string) *apiError {
	n := int32(g.N())
	for _, v := range seeds {
		if v < 0 || v >= n {
			return s.fail(http.StatusBadRequest, codeInvalidArgument,
				"%s: node %d out of range [0,%d)", what, v, n)
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
