package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"comic"
	"comic/internal/core"
	"comic/internal/datasets"
	"comic/internal/exact"
	"comic/internal/graph"
	"comic/internal/server"
)

// graphInfoResp mirrors the unified graph resource representation in
// tests; every surface that describes a graph must produce exactly this
// shape.
type graphInfoResp struct {
	Name        string          `json:"name"`
	Nodes       int             `json:"nodes"`
	Edges       int             `json:"edges"`
	GAP         json.RawMessage `json:"gap"`
	Regime      string          `json:"regime"`
	Generation  int64           `json:"generation"`
	Fingerprint string          `json:"fingerprint"`
	Source      string          `json:"source"`
	Created     string          `json:"created"`
}

// patchResp mirrors the PATCH /v1/graphs/{name}/edges response.
type patchResp struct {
	graphInfoResp
	Repair struct {
		Collections  int `json:"collections"`
		Repaired     int `json:"repaired"`
		Fallbacks    int `json:"fallbacks"`
		ReusedSets   int `json:"reusedSets"`
		RepairedSets int `json:"repairedSets"`
	} `json:"repair"`
}

// reweightBatch builds a PATCH body reweighting the first count distinct
// (u,v) edges of g by factor, and returns the same updates as
// graph.EdgeUpdate values for replaying offline.
func reweightBatch(tb testing.TB, g *graph.Graph, count int, factor float64) (string, []graph.EdgeUpdate) {
	tb.Helper()
	seen := map[[2]int32]bool{}
	var parts []string
	var ups []graph.EdgeUpdate
	for eid := int32(0); eid < int32(g.M()) && len(ups) < count; eid++ {
		u, v := g.EdgeEndpoints(eid)
		if seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		p := g.Prob(eid) * factor
		parts = append(parts, fmt.Sprintf(`{"op":"reweight","u":%d,"v":%d,"p":%g}`, u, v, p))
		ups = append(ups, graph.EdgeUpdate{Op: graph.OpReweight, U: u, V: v, P: p})
	}
	if len(ups) < count {
		tb.Fatalf("graph has only %d distinct edges, want %d", len(ups), count)
	}
	return fmt.Sprintf(`{"updates":[%s]}`, strings.Join(parts, ",")), ups
}

// TestPatchAdvancesGenerationAndRepairs is the tentpole happy path: a
// PATCH advances the generation, changes the fingerprint, repairs the
// warm collections in place, and the next identical solve is (a) still
// warm and (b) byte-identical to a cold solve on the patched topology.
func TestPatchAdvancesGenerationAndRepairs(t *testing.T) {
	d := testDataset(t)
	s := newTestServer(t, d)
	t.Cleanup(s.Close)

	var before graphInfoResp
	if rec := do(t, s, http.MethodGet, "/v1/graphs/Flixster", "", &before); rec.Code != http.StatusOK {
		t.Fatalf("describe = %d %q", rec.Code, rec.Body.String())
	}
	if before.Generation != 0 || before.Fingerprint == "" {
		t.Fatalf("fresh graph = %+v, want generation 0 with a fingerprint", before)
	}

	solveBody := `{"dataset":"Flixster","k":5,"seedsB":[1,2,3],"fixedTheta":2000,"evalRuns":500,"seed":7}`
	var warm solveResp
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", solveBody, &warm); rec.Code != http.StatusOK {
		t.Fatalf("warm solve = %d %q", rec.Code, rec.Body.String())
	}
	builds := s.Index().Stats().Misses
	if builds == 0 {
		t.Fatal("warm solve built no collections")
	}

	patchBody, ups := reweightBatch(t, d.Graph, 5, 0.5)
	var pr patchResp
	if rec := do(t, s, http.MethodPatch, "/v1/graphs/Flixster/edges", patchBody, &pr); rec.Code != http.StatusOK {
		t.Fatalf("patch = %d %q", rec.Code, rec.Body.String())
	}
	if pr.Generation != 1 {
		t.Fatalf("generation = %d, want 1", pr.Generation)
	}
	if pr.Fingerprint == before.Fingerprint || pr.Fingerprint == "" {
		t.Fatalf("fingerprint %q did not change from %q", pr.Fingerprint, before.Fingerprint)
	}
	if pr.Edges != before.Edges || pr.Nodes != before.Nodes {
		t.Fatalf("reweight-only patch changed shape: %+v vs %+v", pr.graphInfoResp, before)
	}
	if pr.Repair.Collections == 0 || pr.Repair.Repaired != pr.Repair.Collections || pr.Repair.Fallbacks != 0 {
		t.Fatalf("repair summary %+v, want every collection repaired", pr.Repair)
	}
	if st := s.Index().Stats(); st.Repairs != int64(pr.Repair.Repaired) || st.RepairFallbacks != 0 {
		t.Fatalf("index stats %+v disagree with repair summary %+v", st, pr.Repair)
	}

	// The repaired collections answer the same solve warm...
	var after solveResp
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", solveBody, &after); rec.Code != http.StatusOK {
		t.Fatalf("post-patch solve = %d %q", rec.Code, rec.Body.String())
	}
	if st := s.Index().Stats(); st.Misses != builds {
		t.Fatalf("post-patch solve rebuilt collections: %d builds, want %d", st.Misses, builds)
	}

	// ...and byte-identically to a cold solve on the patched topology.
	patched, _, err := d.Graph.ApplyUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	cold := newTestServer(t, datasets.New("Flixster", patched, d.GAP, "preloaded"))
	t.Cleanup(cold.Close)
	var want solveResp
	if rec := do(t, cold, http.MethodPost, "/v1/selfinfmax", solveBody, &want); rec.Code != http.StatusOK {
		t.Fatalf("cold solve = %d %q", rec.Code, rec.Body.String())
	}
	if !reflect.DeepEqual(after.Seeds, want.Seeds) || after.Objective != want.Objective {
		t.Fatalf("repaired solve (%v, %v) != cold solve on patched graph (%v, %v)",
			after.Seeds, after.Objective, want.Seeds, want.Objective)
	}

	// The describe endpoint reports the patched generation too.
	var now graphInfoResp
	do(t, s, http.MethodGet, "/v1/graphs/Flixster", "", &now)
	if now.Generation != 1 || now.Fingerprint != pr.Fingerprint {
		t.Fatalf("describe after patch = %+v, want generation 1 / fingerprint %q", now, pr.Fingerprint)
	}
}

// TestPatchRejectsBadUpdates pins the ApplyUpdates failure path: a batch
// naming a nonexistent edge is rejected atomically with 400, and the
// graph's generation does not advance.
func TestPatchRejectsBadUpdates(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)
	rec := do(t, s, http.MethodPatch, "/v1/graphs/Flixster/edges",
		`{"updates":[{"op":"remove","u":0,"v":0}]}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad batch = %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
	if e := decodeEnvelope(t, rec); e.Code != "invalid_argument" {
		t.Fatalf("code = %q", e.Code)
	}
	var info graphInfoResp
	do(t, s, http.MethodGet, "/v1/graphs/Flixster", "", &info)
	if info.Generation != 0 {
		t.Fatalf("rejected patch advanced the generation to %d", info.Generation)
	}
}

// TestGraphInfoUnified pins satellite consistency: POST /v1/graphs, GET
// /v1/graphs, GET /v1/graphs/{name}, /v1/stats datasets, the solve
// response's graph context, and the PATCH response all return the same
// unified resource representation.
func TestGraphInfoUnified(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)

	var created graphInfoResp
	upload := `{"name":"tiny","edgeList":"3 2\n0 1 0.6\n1 2 0.4\n"}`
	if rec := do(t, s, http.MethodPost, "/v1/graphs", upload, &created); rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d %q", rec.Code, rec.Body.String())
	}

	var byName graphInfoResp
	do(t, s, http.MethodGet, "/v1/graphs/tiny", "", &byName)
	if !reflect.DeepEqual(created, byName) {
		t.Fatalf("POST representation %+v != GET %+v", created, byName)
	}

	var list struct {
		Graphs []graphInfoResp `json:"graphs"`
	}
	do(t, s, http.MethodGet, "/v1/graphs", "", &list)
	var stats struct {
		Datasets []graphInfoResp `json:"datasets"`
	}
	do(t, s, http.MethodGet, "/v1/stats", "", &stats)
	for surface, got := range map[string][]graphInfoResp{"list": list.Graphs, "stats": stats.Datasets} {
		found := false
		for _, gi := range got {
			if gi.Name == "tiny" {
				found = true
				if !reflect.DeepEqual(gi, created) {
					t.Fatalf("%s representation %+v != created %+v", surface, gi, created)
				}
			}
		}
		if !found {
			t.Fatalf("%s does not list the uploaded graph", surface)
		}
	}

	// The solve response carries the same representation of the version it
	// computed on.
	var solved struct {
		Graph graphInfoResp `json:"graph"`
	}
	body := `{"dataset":"tiny","k":1,"fixedTheta":200,"evalRuns":100}`
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", body, &solved); rec.Code != http.StatusOK {
		t.Fatalf("solve = %d %q", rec.Code, rec.Body.String())
	}
	if !reflect.DeepEqual(solved.Graph, created) {
		t.Fatalf("solve graph context %+v != created %+v", solved.Graph, created)
	}

	// And the PATCH response is the same object at the next generation.
	var pr patchResp
	if rec := do(t, s, http.MethodPatch, "/v1/graphs/tiny/edges",
		`{"updates":[{"op":"reweight","u":0,"v":1,"p":0.9}]}`, &pr); rec.Code != http.StatusOK {
		t.Fatalf("patch = %d %q", rec.Code, rec.Body.String())
	}
	var afterPatch graphInfoResp
	do(t, s, http.MethodGet, "/v1/graphs/tiny", "", &afterPatch)
	if !reflect.DeepEqual(pr.graphInfoResp, afterPatch) {
		t.Fatalf("PATCH representation %+v != GET %+v", pr.graphInfoResp, afterPatch)
	}
	if pr.Generation != 1 {
		t.Fatalf("patched generation = %d", pr.Generation)
	}
}

// TestPatchGenerationPinningRace drives concurrent solves against a
// stream of PATCH batches (run under -race in CI): every solve must
// complete against the exact generation it resolved — no torn graphs, no
// failed queries — while the generation advances underneath.
func TestPatchGenerationPinningRace(t *testing.T) {
	d := testDataset(t)
	s := newTestServer(t, d)
	t.Cleanup(s.Close)

	solveBody := `{"dataset":"Flixster","k":3,"seedsB":[1],"fixedTheta":500,"evalRuns":100,"seed":9}`
	const patches = 4
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2*patches; i++ {
				rec := do(t, s, http.MethodPost, "/v1/selfinfmax", solveBody, nil)
				if rec.Code != http.StatusOK {
					t.Errorf("concurrent solve = %d %q", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	patchBody, _ := reweightBatch(t, d.Graph, 3, 0.9)
	for i := 0; i < patches; i++ {
		var pr patchResp
		if rec := do(t, s, http.MethodPatch, "/v1/graphs/Flixster/edges", patchBody, &pr); rec.Code != http.StatusOK {
			t.Fatalf("patch %d = %d %q", i, rec.Code, rec.Body.String())
		}
		if pr.Generation != int64(i+1) {
			t.Fatalf("patch %d landed at generation %d", i, pr.Generation)
		}
	}
	wg.Wait()

	// A solve after the storm answers on the final generation.
	var final struct {
		Graph graphInfoResp `json:"graph"`
	}
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", solveBody, &final); rec.Code != http.StatusOK {
		t.Fatalf("final solve = %d %q", rec.Code, rec.Body.String())
	}
	if final.Graph.Generation != patches {
		t.Fatalf("final solve ran on generation %d, want %d", final.Graph.Generation, patches)
	}
}

// TestPatchSnapshotRoundTrip pins persistence end to end: a restarted
// server restores its collections with their request metadata, so a PATCH
// after the restart still repairs them in place instead of dropping them.
func TestPatchSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(t)
	cfg := server.Config{
		Datasets: map[string]*comic.Dataset{"Flixster": d},
		MaxK:     50,
		MaxRuns:  20000,
		StateDir: dir,
	}
	solveBody := `{"dataset":"Flixster","k":5,"seedsB":[1,2,3],"fixedTheta":2000,"evalRuns":500,"seed":7}`

	s1, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var warm solveResp
	if rec := do(t, s1, http.MethodPost, "/v1/selfinfmax", solveBody, &warm); rec.Code != http.StatusOK {
		t.Fatalf("warm solve = %d %q", rec.Code, rec.Body.String())
	}
	if serr := s1.SaveState(); serr != nil {
		t.Fatal(serr)
	}
	s1.Close()

	s2, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	if st := s2.Index().Stats(); st.Restores == 0 {
		t.Fatalf("restart restored nothing: %+v", st)
	}

	patchBody, ups := reweightBatch(t, d.Graph, 5, 0.5)
	var pr patchResp
	if rec := do(t, s2, http.MethodPatch, "/v1/graphs/Flixster/edges", patchBody, &pr); rec.Code != http.StatusOK {
		t.Fatalf("patch = %d %q", rec.Code, rec.Body.String())
	}
	if pr.Repair.Collections == 0 || pr.Repair.Repaired != pr.Repair.Collections {
		t.Fatalf("restored collections not repaired: %+v", pr.Repair)
	}

	// The repaired restore answers warm and matches a cold solve on the
	// patched topology.
	var after solveResp
	if rec := do(t, s2, http.MethodPost, "/v1/selfinfmax", solveBody, &after); rec.Code != http.StatusOK {
		t.Fatalf("post-patch solve = %d %q", rec.Code, rec.Body.String())
	}
	if st := s2.Index().Stats(); st.Misses != 0 {
		t.Fatalf("post-restart post-patch solve went cold: %+v", st)
	}
	patched, _, err := d.Graph.ApplyUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	cold := newTestServer(t, datasets.New("Flixster", patched, d.GAP, "preloaded"))
	t.Cleanup(cold.Close)
	var want solveResp
	if rec := do(t, cold, http.MethodPost, "/v1/selfinfmax", solveBody, &want); rec.Code != http.StatusOK {
		t.Fatalf("cold solve = %d %q", rec.Code, rec.Body.String())
	}
	if !reflect.DeepEqual(after.Seeds, want.Seeds) || after.Objective != want.Objective {
		t.Fatalf("restored+repaired solve (%v, %v) != cold solve (%v, %v)",
			after.Seeds, after.Objective, want.Seeds, want.Objective)
	}

	// A patched preloaded graph survives yet another restart: its topology
	// now comes from the persisted edge list, not Config.
	if serr := s2.SaveState(); serr != nil {
		t.Fatal(serr)
	}
	s2.Close()
	s3, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s3.Close)
	var info graphInfoResp
	do(t, s3, http.MethodGet, "/v1/graphs/Flixster", "", &info)
	if info.Generation != 1 || info.Fingerprint != pr.Fingerprint {
		t.Fatalf("second restart lost the patch: %+v, want generation 1 / fingerprint %q", info, pr.Fingerprint)
	}
	var again solveResp
	if rec := do(t, s3, http.MethodPost, "/v1/selfinfmax", solveBody, &again); rec.Code != http.StatusOK {
		t.Fatalf("post-second-restart solve = %d %q", rec.Code, rec.Body.String())
	}
	if !reflect.DeepEqual(again.Seeds, want.Seeds) || again.Objective != want.Objective {
		t.Fatalf("second restart drifted: (%v, %v) != (%v, %v)",
			again.Seeds, again.Objective, want.Seeds, want.Objective)
	}
}

// TestPatchSeedQualityMatchesExact cross-checks post-repair seed quality
// against the internal/exact enumeration oracle on a ≤12-node graph: the
// seed the repaired path selects must score exactly as well as the true
// single-seed argmax on the patched topology.
func TestPatchSeedQualityMatchesExact(t *testing.T) {
	// Deterministic p=1 edges and GAP boundaries at 1 keep the post-patch
	// class count tiny: only the two reweighted edges add edge dimensions,
	// and each α threshold splits into two ranges instead of three.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 5, 1)
	g := b.MustBuild()
	gap := core.GAP{QA0: 0.5, QAB: 1, QB0: 0.4, QBA: 1} // mutual complementarity
	d := datasets.New("tiny", g, gap, "preloaded")
	s, err := server.New(server.Config{
		Datasets: map[string]*comic.Dataset{"tiny": d},
		MaxK:     10,
		MaxRuns:  50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	solveBody := `{"dataset":"tiny","k":1,"fixedTheta":20000,"evalRuns":20000,"seed":5}`
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", solveBody, nil); rec.Code != http.StatusOK {
		t.Fatalf("warm solve = %d %q", rec.Code, rec.Body.String())
	}
	// The batch mixes all three ops so the repair path covers EID remapping,
	// not just in-place reweights.
	patchBody := `{"updates":[
		{"op":"reweight","u":0,"v":1,"p":0.6},
		{"op":"reweight","u":2,"v":3,"p":0.5},
		{"op":"remove","u":2,"v":5},
		{"op":"add","u":1,"v":4,"p":1}
	]}`
	ups := []graph.EdgeUpdate{
		{Op: graph.OpReweight, U: 0, V: 1, P: 0.6},
		{Op: graph.OpReweight, U: 2, V: 3, P: 0.5},
		{Op: graph.OpRemove, U: 2, V: 5},
		{Op: graph.OpAdd, U: 1, V: 4, P: 1},
	}
	var pr patchResp
	if rec := do(t, s, http.MethodPatch, "/v1/graphs/tiny/edges", patchBody, &pr); rec.Code != http.StatusOK {
		t.Fatalf("patch = %d %q", rec.Code, rec.Body.String())
	}
	var res solveResp
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", solveBody, &res); rec.Code != http.StatusOK {
		t.Fatalf("post-patch solve = %d %q", rec.Code, rec.Body.String())
	}
	if len(res.Seeds) != 1 {
		t.Fatalf("seeds = %v, want one", res.Seeds)
	}

	patched, _, err := g.ApplyUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	best := -1.0
	for v := int32(0); v < int32(patched.N()); v++ {
		sigma, xerr := exact.SigmaA(patched, gap, []int32{v}, nil)
		if xerr != nil {
			t.Fatal(xerr)
		}
		if sigma > best {
			best = sigma
		}
	}
	got, err := exact.SigmaA(patched, gap, res.Seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got < best-0.2 {
		t.Fatalf("post-repair seed %v scores %v exactly; argmax on the patched graph is %v", res.Seeds, got, best)
	}
}
