package server

import (
	"reflect"
	"sync"
	"testing"

	"comic/internal/rrset"
)

// TestIndexSelectSeedsMemoParityAndCounters pins the memoized selection
// path's contract: byte-identical seeds to an index-free build + fresh
// CELF, one OrderMiss then OrderHits, and exact order-byte accounting in
// both OrderBytes and ResidentBytes.
func TestIndexSelectSeedsMemoParityAndCounters(t *testing.T) {
	g := testGraph(t)
	idx := NewIndex(0)
	req := testRequest(g, 7, 200)

	refCol, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantSeeds, wantStats := rrset.SelectSeeds(refCol, g.N(), 5)

	seeds, st, err := idx.SelectSeeds(req, g.N(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seeds, wantSeeds) {
		t.Fatalf("memoized seeds %v != fresh %v", seeds, wantSeeds)
	}
	if st.Coverage != wantStats.Coverage || st.SpreadEstimate != wantStats.SpreadEstimate ||
		st.Theta != wantStats.Theta {
		t.Fatalf("memoized stats (%v, %v, %d) != fresh (%v, %v, %d)",
			st.Coverage, st.SpreadEstimate, st.Theta,
			wantStats.Coverage, wantStats.SpreadEstimate, wantStats.Theta)
	}
	is := idx.Stats()
	if is.OrderMisses != 1 || is.OrderHits != 0 {
		t.Fatalf("cold order counters = %d hits / %d misses, want 0/1", is.OrderHits, is.OrderMisses)
	}
	if is.OrderBytes <= 0 {
		t.Fatalf("OrderBytes = %d after an ordering build", is.OrderBytes)
	}
	col, err := idx.Collection(req)
	if err != nil {
		t.Fatal(err)
	}
	if want := col.Bytes() + is.OrderBytes; is.ResidentBytes != want {
		t.Fatalf("ResidentBytes = %d, want collection %d + order %d",
			is.ResidentBytes, col.Bytes(), is.OrderBytes)
	}

	for k := 0; k <= 5; k++ {
		wk, _ := rrset.SelectSeeds(refCol, g.N(), k)
		gk, _, err := idx.SelectSeeds(req, g.N(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gk, wk) {
			t.Fatalf("k=%d: memoized %v != fresh %v", k, gk, wk)
		}
	}
	if is := idx.Stats(); is.OrderMisses != 1 || is.OrderHits != 6 {
		t.Fatalf("warm order counters = %d hits / %d misses, want 6/1", is.OrderHits, is.OrderMisses)
	}
}

// TestIndexSelectSeedsBypassAboveMaxOrderK: a k beyond the memo depth must
// select fresh — identical seeds, no order counters, no order bytes.
func TestIndexSelectSeedsBypassAboveMaxOrderK(t *testing.T) {
	g := testGraph(t)
	idx := NewIndex(0)
	idx.SetMaxOrderK(3)
	req := testRequest(g, 7, 200)

	refCol, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	want5, _ := rrset.SelectSeeds(refCol, g.N(), 5)
	got5, _, err := idx.SelectSeeds(req, g.N(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got5, want5) {
		t.Fatalf("bypass seeds %v != fresh %v", got5, want5)
	}
	if is := idx.Stats(); is.OrderHits != 0 || is.OrderMisses != 0 || is.OrderBytes != 0 {
		t.Fatalf("bypass moved order counters: %+v", is)
	}

	// At the memo depth the order kicks in.
	want3, _ := rrset.SelectSeeds(refCol, g.N(), 3)
	got3, _, err := idx.SelectSeeds(req, g.N(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got3, want3) {
		t.Fatalf("memo seeds %v != fresh %v", got3, want3)
	}
	if is := idx.Stats(); is.OrderMisses != 1 || is.OrderBytes <= 0 {
		t.Fatalf("memo did not engage at k = maxOrderK: %+v", is)
	}

	// SetMaxOrderK(0) disables memoization outright.
	off := NewIndex(0)
	off.SetMaxOrderK(0)
	if _, _, err := off.SelectSeeds(req, g.N(), 1); err != nil {
		t.Fatal(err)
	}
	if is := off.Stats(); is.OrderHits != 0 || is.OrderMisses != 0 || is.OrderBytes != 0 {
		t.Fatalf("disabled memo still moved counters: %+v", is)
	}
}

// TestIndexOrderSingleflightExactlyOneMiss: G concurrent warm selections
// over one collection must share a single CELF ordering build — exactly one
// OrderMiss, G-1 OrderHits — and all return identical seeds.
func TestIndexOrderSingleflightExactlyOneMiss(t *testing.T) {
	g := testGraph(t)
	idx := NewIndex(0)
	req := testRequest(g, 9, 300)
	if _, err := idx.Collection(req); err != nil {
		t.Fatal(err) // warm the collection so only the ordering is cold
	}

	const G = 16
	var (
		start   = make(chan struct{})
		wg      sync.WaitGroup
		results [G][]int32
		errs    [G]error
	)
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], _, errs[i] = idx.SelectSeeds(req, g.N(), 5)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < G; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("goroutine %d selected %v, goroutine 0 %v", i, results[i], results[0])
		}
	}
	is := idx.Stats()
	if is.OrderMisses != 1 {
		t.Fatalf("OrderMisses = %d, want exactly 1 (singleflight)", is.OrderMisses)
	}
	if is.OrderHits != G-1 {
		t.Fatalf("OrderHits = %d, want %d", is.OrderHits, G-1)
	}
}

// TestIndexOrderEvictionChurnSafety hammers two keys through a budget that
// cannot hold both, so ordering builds race with evictions and rebuilds of
// the collections they were computed over. Every selection must still
// return the right seeds, and the byte accounting must balance exactly
// afterwards.
func TestIndexOrderEvictionChurnSafety(t *testing.T) {
	g := testGraph(t)
	reqA := testRequest(g, 1, 300)
	reqB := testRequest(g, 2, 300)

	colA, err := reqA.Build()
	if err != nil {
		t.Fatal(err)
	}
	colB, err := reqB.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantA, _ := rrset.SelectSeeds(colA, g.N(), 5)
	wantB, _ := rrset.SelectSeeds(colB, g.N(), 5)

	// Budget below two collections: every alternation evicts the other key.
	idx := NewIndex(colA.Bytes() + colB.Bytes()/2)

	const workers, iters = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req, want := reqA, wantA
				if (w+i)%2 == 0 {
					req, want = reqB, wantB
				}
				seeds, _, err := idx.SelectSeeds(req, g.N(), 5)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(seeds, want) {
					t.Errorf("worker %d iter %d: seeds %v, want %v", w, i, seeds, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The running totals must equal a fresh walk of the resident entries —
	// any attach/evict/drop that double-counted or leaked would show here.
	idx.mu.Lock()
	var sumBytes, sumOrder int64
	for el := idx.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*indexEntry)
		sumBytes += e.bytes + e.orderBytes
		sumOrder += e.orderBytes
	}
	gotBytes, gotOrder := idx.bytes, idx.orderBytes
	idx.mu.Unlock()
	if gotBytes != sumBytes || gotOrder != sumOrder {
		t.Fatalf("accounting drifted: bytes %d (entries sum %d), orderBytes %d (entries sum %d)",
			gotBytes, sumBytes, gotOrder, sumOrder)
	}
}

// TestIndexDropGraphReleasesOrders: DropGraph must release the memoized
// orders along with their collections — counters and bytes return to zero.
func TestIndexDropGraphReleasesOrders(t *testing.T) {
	g := testGraph(t)
	idx := NewIndex(0)
	for seed := uint64(1); seed <= 3; seed++ {
		if _, _, err := idx.SelectSeeds(testRequest(g, seed, 150), g.N(), 4); err != nil {
			t.Fatal(err)
		}
	}
	if is := idx.Stats(); is.OrderBytes <= 0 || is.ResidentCollections != 3 {
		t.Fatalf("precondition: %+v", is)
	}
	if dropped := idx.DropGraph(g); dropped != 3 {
		t.Fatalf("dropped %d, want 3", dropped)
	}
	is := idx.Stats()
	if is.OrderBytes != 0 || is.ResidentBytes != 0 || is.ResidentCollections != 0 {
		t.Fatalf("drop leaked: %+v", is)
	}
}
