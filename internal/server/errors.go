package server

import (
	"fmt"
	"net/http"
	"strings"
)

// Structured error envelope. Every non-2xx response body the server
// writes has one shape:
//
//	{"error": {"code": "<stable_snake_case>", "message": "...", "details": {...}}}
//
// The code is the machine-readable contract: clients branch on it, and it
// is stable across releases even when the human-readable message is
// reworded. The details object carries optional structured context (the
// conflicting generations, the allowed methods, the known graph names);
// its keys are documented per code in docs/api.md.

// Error codes. One catalog for the whole v1 surface; adding a code means
// documenting it in docs/api.md and covering it in the conformance test.
const (
	// codeInvalidArgument (400): the request body or parameters failed
	// validation — malformed JSON, out-of-range seeds, a budget beyond an
	// operator limit, a malformed edge-update batch.
	codeInvalidArgument = "invalid_argument"
	// codeGraphNotFound (404): the named dataset/graph is not registered.
	codeGraphNotFound = "graph_not_found"
	// codeJobNotFound (404): the job id is unknown (never existed, or its
	// record was discarded by retention or DELETE).
	codeJobNotFound = "job_not_found"
	// codeMethodNotAllowed (405): the route exists but not for this HTTP
	// method; the response carries an Allow header.
	codeMethodNotAllowed = "method_not_allowed"
	// codeGraphConflict (409): a registration conflict — the name is
	// taken, the graph limit is reached, or the graph was deleted during
	// registration.
	codeGraphConflict = "graph_conflict"
	// codeGraphGenerationConflict (409): a PATCH carried an ifGeneration
	// precondition that does not match the graph's current generation.
	codeGraphGenerationConflict = "graph_generation_conflict"
	// codeUnsupportedRegime (400): the request's GAP regime has no enabled
	// algorithm (the Monte-Carlo greedy fallback is disabled).
	codeUnsupportedRegime = "unsupported_regime"
	// codeQueueFull (429): the async job queue is at capacity.
	codeQueueFull = "queue_full"
	// codeShuttingDown (503): the server is draining and accepts no new
	// jobs.
	codeShuttingDown = "shutting_down"
	// codeCanceled (499): a batch query was skipped because the request
	// context (or its job) was canceled before the query ran.
	codeCanceled = "canceled"
	// codeInternal (500): a server-side failure — a panicking build, a
	// persistence error. Nothing about the request caused it.
	codeInternal = "internal"
	// codePeerUnreachable (502): cluster mode only — the request had to be
	// proxied to the graph's owner node, the owner did not answer (after
	// the router's bounded retry), and the request could not be served
	// locally instead (reads degrade to local service; mutations never
	// do). The details carry the peer's id and url.
	codePeerUnreachable = "peer_unreachable"
)

// Exported error-code aliases for the cluster router, which writes
// transport-level failures in the same envelope the server's own handlers
// use. The unexported constants above stay the package-internal currency.
const (
	CodeInvalidArgument  = codeInvalidArgument
	CodeMethodNotAllowed = codeMethodNotAllowed
	CodePeerUnreachable  = codePeerUnreachable
	CodeInternal         = codeInternal
)

// errorBody is the inner object of the error envelope; batch results embed
// it directly (their envelope is the surrounding batchResult).
type errorBody struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

// errorEnvelope is the body of every non-2xx response.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// apiError is a validation or execution failure with the HTTP status and
// stable code it maps to. It is the error currency of the run* helpers,
// which serve both the dedicated endpoints and batch/job queries.
type apiError struct {
	Status  int
	Code    string
	Msg     string
	Details map[string]any
}

func (e *apiError) Error() string { return e.Msg }

func (e *apiError) body() errorBody {
	return errorBody{Code: e.Code, Message: e.Msg, Details: e.Details}
}

// withDetails attaches structured context to the error and returns it, for
// chaining onto fail.
func (e *apiError) withDetails(details map[string]any) *apiError {
	e.Details = details
	return e
}

// fail counts one rejected request and builds its apiError. All request
// rejections funnel through here (or httpError), so the "errors" stat
// counts each rejection exactly once.
func (s *Server) fail(status int, code string, format string, args ...any) *apiError {
	s.nErrors.Add(1)
	return &apiError{Status: status, Code: code, Msg: fmt.Sprintf(format, args...)}
}

// writeErr renders an apiError as the JSON error envelope.
func (s *Server) writeErr(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.Status, errorEnvelope{Error: e.body()})
}

// WriteError writes the standard structured error envelope without
// touching a Server's counters — the cluster router uses it for failures
// (unreachable peer, malformed routed body) that originate in the routing
// tier, outside any one server's handlers. Proxied responses are passed
// through verbatim and never re-wrapped; this is only for errors the
// router itself produces.
func WriteError(w http.ResponseWriter, status int, code, msg string, details map[string]any) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: msg, Details: details}})
}

// httpError counts and writes a transport-level rejection (bad method, bad
// body) that never reached a run* helper.
func (s *Server) httpError(w http.ResponseWriter, status int, code, msg string) {
	s.nErrors.Add(1)
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: msg}})
}

// methodNotAllowed writes the 405 envelope with the Allow header listing
// the methods the route does serve, per RFC 9110 §15.5.6.
func (s *Server) methodNotAllowed(w http.ResponseWriter, r *http.Request, allowed ...string) {
	allow := strings.Join(allowed, ", ")
	w.Header().Set("Allow", allow)
	s.nErrors.Add(1)
	writeJSON(w, http.StatusMethodNotAllowed, errorEnvelope{Error: errorBody{
		Code:    codeMethodNotAllowed,
		Message: fmt.Sprintf("method %s is not allowed here", r.Method),
		Details: map[string]any{"allow": allow},
	}})
}

// requireMethod gates a single-method route: true when r uses it, else a
// 405 with Allow has been written.
func (s *Server) requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	s.methodNotAllowed(w, r, method)
	return false
}
