package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"comic"
	"comic/internal/server"
)

// uploadBody builds a POST /v1/graphs body for a small path graph.
func uploadBody(tb testing.TB, name string, gap map[string]float64) string {
	tb.Helper()
	body := map[string]any{
		"name":     name,
		"edgeList": "4 3\n0 1 0.9\n1 2 0.9\n2 3 0.9\n",
	}
	if gap != nil {
		body["gap"] = gap
	}
	b, err := json.Marshal(body)
	if err != nil {
		tb.Fatal(err)
	}
	return string(b)
}

func TestGraphUploadQueryDelete(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)

	// Upload with an explicit GAP.
	var up struct {
		Name   string `json:"name"`
		Nodes  int    `json:"nodes"`
		Edges  int    `json:"edges"`
		Source string `json:"source"`
	}
	gap := map[string]float64{"qa0": 0.6, "qab": 0.9, "qb0": 0.6, "qba": 0.9}
	rec := do(t, s, http.MethodPost, "/v1/graphs", uploadBody(t, "tiny", gap), &up)
	if rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d %q", rec.Code, rec.Body.String())
	}
	if up.Name != "tiny" || up.Nodes != 4 || up.Edges != 3 || up.Source != "uploaded" {
		t.Fatalf("upload response = %+v", up)
	}

	// Listed alongside the preloaded dataset.
	var list struct {
		Graphs []struct {
			Name string `json:"name"`
		} `json:"graphs"`
	}
	do(t, s, http.MethodGet, "/v1/graphs", "", &list)
	names := make([]string, len(list.Graphs))
	for i, g := range list.Graphs {
		names[i] = g.Name
	}
	if len(names) != 2 || names[0] != "Flixster" || names[1] != "tiny" {
		t.Fatalf("graph list = %v", names)
	}

	// Queryable immediately, including solves (which populate the cache).
	var sp struct {
		MeanA float64 `json:"meanA"`
	}
	if rec := do(t, s, http.MethodPost, "/v1/spread",
		`{"dataset":"tiny","seedsA":[0],"runs":500,"seed":3}`, &sp); rec.Code != http.StatusOK {
		t.Fatalf("spread on uploaded graph = %d %q", rec.Code, rec.Body.String())
	}
	if sp.MeanA < 1 {
		t.Fatalf("uploaded-graph spread = %v", sp.MeanA)
	}
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax",
		`{"dataset":"tiny","k":2,"fixedTheta":300,"evalRuns":100,"seed":3}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("solve on uploaded graph = %d %q", rec.Code, rec.Body.String())
	}
	if s.Index().Len() == 0 {
		t.Fatal("solve left no resident collections")
	}

	// Deleting drops the graph's cache entries and 404s future queries.
	if rec := do(t, s, http.MethodDelete, "/v1/graphs/tiny", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("delete = %d %q", rec.Code, rec.Body.String())
	}
	if got := s.Index().Len(); got != 0 {
		t.Fatalf("deleted graph left %d resident collections", got)
	}
	if st := s.Index().Stats(); st.Drops == 0 {
		t.Fatalf("Drops = 0 after delete: %+v", st)
	}
	if rec := do(t, s, http.MethodPost, "/v1/spread", `{"dataset":"tiny","seedsA":[0]}`, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("query after delete = %d, want 404", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/v1/graphs/tiny", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET after delete = %d, want 404", rec.Code)
	}
	if rec := do(t, s, http.MethodDelete, "/v1/graphs/tiny", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete = %d, want 404", rec.Code)
	}
}

// TestGraphUploadValidation is the table-driven rejection sweep for the
// upload endpoint: bad names, bad GAPs, and — through graph.ReadEdgeList's
// parse-time validation — malformed, out-of-range, and non-finite edge
// lists, all rejected with the offending line number surfaced to the
// client.
func TestGraphUploadValidation(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)
	mk := func(name, edges string) string {
		b, _ := json.Marshal(map[string]any{"name": name, "edgeList": edges})
		return string(b)
	}
	cases := []struct {
		name, body, wantSub string
		want                int
	}{
		{"empty name", mk("", "2 1\n0 1 0.5\n"), "name must be non-empty", http.StatusBadRequest},
		{"slash in name", mk("a/b", "2 1\n0 1 0.5\n"), "no '/'", http.StatusBadRequest},
		{"empty edge list", mk("g", ""), "edgeList must hold", http.StatusBadRequest},
		{"endpoint out of range", mk("g", "2 1\n0 7 0.5\n"), "line 2: dst 7 out of range [0,2)", http.StatusBadRequest},
		{"NaN probability", mk("g", "2 1\n0 1 NaN\n"), "line 2: probability NaN outside [0,1]", http.StatusBadRequest},
		{"probability above one", mk("g", "2 1\n0 1 1.25\n"), "line 2: probability 1.25 outside [0,1]", http.StatusBadRequest},
		{"self-loop", mk("g", "2 1\n1 1 0.5\n"), "line 2: self-loop", http.StatusBadRequest},
		{"edge count mismatch", mk("g", "2 2\n0 1 0.5\n"), "declared 2 edges, found 1", http.StatusBadRequest},
		{"name collision", mk("Flixster", "2 1\n0 1 0.5\n"), "already registered", http.StatusConflict},
		{"bad gap", `{"name":"g","edgeList":"2 1\n0 1 0.5\n","gap":{"qa0":2,"qab":1,"qb0":0.5,"qba":0.5}}`, "", http.StatusBadRequest},
		{"unknown field", `{"name":"g","edges":"2 1\\n0 1 0.5\\n"}`, "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, http.MethodPost, "/v1/graphs", tc.body, nil)
			if rec.Code != tc.want {
				t.Fatalf("upload = %d, want %d (%s)", rec.Code, tc.want, rec.Body.String())
			}
			e := decodeEnvelope(t, rec)
			if tc.wantSub != "" && !strings.Contains(e.Message, tc.wantSub) {
				t.Fatalf("error %q does not contain %q", e.Message, tc.wantSub)
			}
		})
	}
	// Nothing from the rejected uploads may have landed in the registry.
	var list struct {
		Graphs []struct {
			Name string `json:"name"`
		} `json:"graphs"`
	}
	do(t, s, http.MethodGet, "/v1/graphs", "", &list)
	if len(list.Graphs) != 1 {
		t.Fatalf("registry after rejections = %+v", list.Graphs)
	}
}

// TestGraphUploadNodeLimit pins the allocation-bomb guard: the header's
// node count alone drives CSR allocation, so a few-byte body declaring
// billions of nodes must be rejected before anything is allocated.
func TestGraphUploadNodeLimit(t *testing.T) {
	s, err := server.New(server.Config{
		Datasets:       map[string]*comic.Dataset{"Flixster": testDataset(t)},
		MaxUploadNodes: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	body, _ := json.Marshal(map[string]any{"name": "bomb", "edgeList": "2000000000 0\n"})
	rec := do(t, s, http.MethodPost, "/v1/graphs", string(body), nil)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "node count 2000000000 exceeds limit 100") {
		t.Fatalf("oversized upload = %d %q, want 400 with node-limit message", rec.Code, rec.Body.String())
	}
	body, _ = json.Marshal(map[string]any{"name": "ok", "edgeList": "100 1\n0 1 0.5\n"})
	if rec := do(t, s, http.MethodPost, "/v1/graphs", string(body), nil); rec.Code != http.StatusCreated {
		t.Fatalf("upload at the node limit = %d %q", rec.Code, rec.Body.String())
	}
}

func TestGraphLimit(t *testing.T) {
	s, err := server.New(server.Config{
		Datasets:  map[string]*comic.Dataset{"Flixster": testDataset(t)},
		MaxGraphs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if rec := do(t, s, http.MethodPost, "/v1/graphs", uploadBody(t, "g1", nil), nil); rec.Code != http.StatusCreated {
		t.Fatalf("first upload = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/v1/graphs", uploadBody(t, "g2", nil), nil); rec.Code != http.StatusConflict {
		t.Fatalf("upload beyond MaxGraphs = %d, want 409", rec.Code)
	}
	// Deleting frees a slot.
	do(t, s, http.MethodDelete, "/v1/graphs/g1", "", nil)
	if rec := do(t, s, http.MethodPost, "/v1/graphs", uploadBody(t, "g2", nil), nil); rec.Code != http.StatusCreated {
		t.Fatalf("upload after delete = %d", rec.Code)
	}
}

// TestDeleteDuringInFlightSolves is the registry's ref-counting race test
// (run under -race in CI): deleting a graph while solves are in flight
// must not disturb those solves, and once the last one finishes, every
// cached collection drawn on the graph must be gone — including ones
// inserted by builds that were still running when the DELETE landed.
func TestDeleteDuringInFlightSolves(t *testing.T) {
	d := testDataset(t)
	s := newTestServer(t, d)
	t.Cleanup(s.Close)

	const solvers = 8
	var wg sync.WaitGroup
	codes := make([]int, solvers)
	for i := 0; i < solvers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds force distinct collection builds, so several
			// builds are mid-flight when the delete lands.
			body := fmt.Sprintf(
				`{"dataset":"Flixster","k":3,"seedsB":[1],"fixedTheta":3000,"evalRuns":200,"seed":%d}`, i)
			rec := do(t, s, http.MethodPost, "/v1/selfinfmax", body, nil)
			codes[i] = rec.Code
		}(i)
	}
	rec := do(t, s, http.MethodDelete, "/v1/graphs/Flixster", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete during solves = %d %q", rec.Code, rec.Body.String())
	}
	wg.Wait()

	for i, code := range codes {
		// Solves that acquired the graph before the delete finish with 200;
		// ones that arrived after get 404. Nothing else is acceptable.
		if code != http.StatusOK && code != http.StatusNotFound {
			t.Fatalf("solver %d finished with %d", i, code)
		}
	}
	if got := s.Index().Len(); got != 0 {
		t.Fatalf("deleted graph left %d resident collections", got)
	}
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax",
		`{"dataset":"Flixster","k":3,"fixedTheta":500,"evalRuns":100}`, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("solve after delete = %d, want 404", rec.Code)
	}
}
