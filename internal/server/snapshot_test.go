package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"comic"
	"comic/internal/graph"
	"comic/internal/rng"
	"comic/internal/rrset"
	"comic/internal/server"
)

// snapGraph builds a deterministic small graph for index-level snapshot
// tests.
func snapGraph(tb testing.TB) *graph.Graph {
	tb.Helper()
	g := graph.PowerLaw(200, 5, 2.16, true, rng.New(7))
	graph.AssignWeightedCascade(g)
	return g
}

// snapReq is a cacheable IC collection request with the given θ (distinct
// θ ⇒ distinct cache key ⇒ distinct collection).
func snapReq(g *graph.Graph, theta int) rrset.CollectionRequest {
	return rrset.CollectionRequest{
		GraphID: "snap#1",
		Graph:   g,
		Kind:    rrset.KindIC,
		K:       5,
		Opts:    rrset.Options{FixedTheta: theta, Workers: 1},
		Seed:    42,
	}
}

// rrsFiles globs the snapshot entry files in dir.
func rrsFiles(tb testing.TB, dir string) []string {
	tb.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.rrs"))
	if err != nil {
		tb.Fatal(err)
	}
	return files
}

// readManifest decodes MANIFEST.json in dir.
func readManifest(tb testing.TB, dir string) []struct {
	File    string `json:"file"`
	GraphID string `json:"graphID"`
	Bytes   int64  `json:"bytes"`
} {
	tb.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		tb.Fatal(err)
	}
	var man struct {
		Version int `json:"version"`
		Entries []struct {
			File    string `json:"file"`
			GraphID string `json:"graphID"`
			Bytes   int64  `json:"bytes"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		tb.Fatal(err)
	}
	if man.Version != 1 {
		tb.Fatalf("manifest version %d", man.Version)
	}
	return man.Entries
}

func TestIndexSnapshotRoundTrip(t *testing.T) {
	g := snapGraph(t)
	dir := t.TempDir()
	idx := server.NewIndex(0)
	reqs := []rrset.CollectionRequest{snapReq(g, 300), snapReq(g, 500)}
	want := make([]*rrset.Collection, len(reqs))
	for i, req := range reqs {
		col, err := idx.Collection(req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = col
	}
	if serr := idx.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}
	if st := idx.Stats(); st.Snapshots != 1 || st.SnapshotErrors != 0 {
		t.Fatalf("save stats %+v", st)
	}

	fresh := server.NewIndex(0)
	n, err := fresh.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": g})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || fresh.Len() != 2 {
		t.Fatalf("restored %d entries, Len %d, want 2", n, fresh.Len())
	}
	st := fresh.Stats()
	if st.Restores != 2 || st.RestoreRejects != 0 {
		t.Fatalf("restore stats %+v", st)
	}
	if st.ResidentBytes != want[0].Bytes()+want[1].Bytes() {
		t.Fatalf("restored bytes %d != exact sum %d", st.ResidentBytes, want[0].Bytes()+want[1].Bytes())
	}
	// The restored entries answer as hits with collections equal to the
	// originals — zero builds.
	for i, req := range reqs {
		col, err := fresh.Collection(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(col, want[i]) {
			t.Fatalf("restored collection %d differs from original", i)
		}
	}
	if st := fresh.Stats(); st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("after restored queries: hits %d misses %d, want 2/0", st.Hits, st.Misses)
	}
}

func TestLoadSnapshotPreservesLRUOrderAndBudget(t *testing.T) {
	g := snapGraph(t)
	dir := t.TempDir()
	idx := server.NewIndex(0)
	reqA, reqB, reqC := snapReq(g, 200), snapReq(g, 300), snapReq(g, 400)
	colA, _ := idx.Collection(reqA)
	if _, err := idx.Collection(reqB); err != nil {
		t.Fatal(err)
	}
	colC, _ := idx.Collection(reqC)
	if _, err := idx.Collection(reqA); err != nil { // touch A: LRU order is now A,C,B
		t.Fatal(err)
	}
	if serr := idx.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}

	// Budget for exactly A+C: B (the coldest) must be left behind, and
	// nothing after the first overflow may sneak in.
	budget := colA.Bytes() + colC.Bytes()
	fresh := server.NewIndex(budget)
	n, err := fresh.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": g})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d entries under budget, want 2", n)
	}
	st := fresh.Stats()
	if st.RestoreRejects != 1 {
		t.Fatalf("RestoreRejects = %d, want 1 (budget)", st.RestoreRejects)
	}
	if st.ResidentBytes != budget {
		t.Fatalf("resident %d != budget %d", st.ResidentBytes, budget)
	}
	// A and C must answer warm, B must be a miss.
	if _, err := fresh.Collection(reqA); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Collection(reqC); err != nil {
		t.Fatal(err)
	}
	if st := fresh.Stats(); st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("A/C not both restored: hits %d misses %d", st.Hits, st.Misses)
	}

	// Order proof: re-saving the restored (unbudgeted reload) index must
	// reproduce the exact MRU-first manifest order A, C, B.
	full := server.NewIndex(0)
	if _, err := full.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": g}); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := full.SaveSnapshot(dir2); err != nil {
		t.Fatal(err)
	}
	want := readManifest(t, dir)
	got := readManifest(t, dir2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restore did not preserve LRU order:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadSnapshotSkipsCorruptEntries(t *testing.T) {
	g := snapGraph(t)
	dir := t.TempDir()
	idx := server.NewIndex(0)
	for _, theta := range []int{200, 300, 400} {
		if _, err := idx.Collection(snapReq(g, theta)); err != nil {
			t.Fatal(err)
		}
	}
	if serr := idx.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}
	files := rrsFiles(t, dir)
	if len(files) != 3 {
		t.Fatalf("want 3 entry files, got %d", len(files))
	}
	// Truncate one entry and flip another's format version; the third
	// survives.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Truncate inside the core sections (the offsets array alone outgrows
	// this prefix), not merely inside an optional trailing section — a lost
	// optional section is tolerated by design, a torn core is not.
	if werr := os.WriteFile(files[0], data[:200], 0o644); werr != nil {
		t.Fatal(werr)
	}
	data, err = os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	data[4]++ // version field sits right after the 4-byte magic
	if werr := os.WriteFile(files[1], data, 0o644); werr != nil {
		t.Fatal(werr)
	}

	fresh := server.NewIndex(0)
	n, err := fresh.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": g})
	if err != nil {
		t.Fatalf("corrupt entries must not fail the load: %v", err)
	}
	if n != 1 {
		t.Fatalf("restored %d entries, want 1", n)
	}
	if st := fresh.Stats(); st.Restores != 1 || st.RestoreRejects != 2 {
		t.Fatalf("stats %+v, want 1 restore / 2 rejects", st)
	}
	// Self-repair: the rejected files must be deleted so the next
	// SaveSnapshot (whose skip-if-exists reuses on-disk entries) rewrites
	// them instead of re-referencing the corruption forever.
	if left := rrsFiles(t, dir); len(left) != 1 {
		t.Fatalf("rejected entry files not deleted: %v", left)
	}
	for _, theta := range []int{200, 300, 400} { // rebuild what was lost
		if _, err := fresh.Collection(snapReq(g, theta)); err != nil {
			t.Fatal(err)
		}
	}
	if serr := fresh.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}
	repaired := server.NewIndex(0)
	if n, err := repaired.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": g}); err != nil || n != 3 {
		t.Fatalf("snapshot not repaired: restored %d err %v, want 3/nil", n, err)
	}
}

func TestLoadSnapshotRejectsUnknownOrMismatchedGraph(t *testing.T) {
	g := snapGraph(t)
	dir := t.TempDir()
	idx := server.NewIndex(0)
	if _, err := idx.Collection(snapReq(g, 250)); err != nil {
		t.Fatal(err)
	}
	if serr := idx.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}

	// Unknown GraphID: the graph is gone from the registry.
	fresh := server.NewIndex(0)
	if n, err := fresh.LoadSnapshot(dir, map[string]*graph.Graph{}); err != nil || n != 0 {
		t.Fatalf("unknown graphID: restored %d err %v, want 0/nil", n, err)
	}
	if st := fresh.Stats(); st.RestoreRejects != 1 {
		t.Fatalf("unknown graphID not counted: %+v", st)
	}

	// Same GraphID, different graph: the N/M guard must reject.
	other := graph.PowerLaw(50, 3, 2.16, false, rng.New(9))
	graph.AssignWeightedCascade(other)
	fresh2 := server.NewIndex(0)
	if n, err := fresh2.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": other}); err != nil || n != 0 {
		t.Fatalf("mismatched graph: restored %d err %v, want 0/nil", n, err)
	}
	if st := fresh2.Stats(); st.RestoreRejects != 1 {
		t.Fatalf("mismatched graph not counted: %+v", st)
	}
}

func TestDropGraphDeletesSnapshotFiles(t *testing.T) {
	g := snapGraph(t)
	dir := t.TempDir()
	idx := server.NewIndex(0)
	if _, err := idx.Collection(snapReq(g, 250)); err != nil {
		t.Fatal(err)
	}
	if serr := idx.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}
	if got := len(rrsFiles(t, dir)); got != 1 {
		t.Fatalf("want 1 entry file, got %d", got)
	}
	if dropped := idx.DropGraph(g); dropped != 1 {
		t.Fatalf("dropped %d, want 1", dropped)
	}
	if got := len(rrsFiles(t, dir)); got != 0 {
		t.Fatalf("DropGraph left %d snapshot files on disk", got)
	}
	// The stale manifest still references the deleted file; a load must
	// skip it cleanly.
	fresh := server.NewIndex(0)
	if n, err := fresh.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": g}); err != nil || n != 0 {
		t.Fatalf("restored %d err %v after drop, want 0/nil", n, err)
	}
}

func TestLoadSnapshotIgnoresCrashedWriterLeftovers(t *testing.T) {
	// A server killed mid-snapshot leaves only temp files behind — the
	// rename is the commit point — so a boot over the directory must see
	// exactly the previous snapshot.
	g := snapGraph(t)
	dir := t.TempDir()
	idx := server.NewIndex(0)
	col, err := idx.Collection(snapReq(g, 300))
	if err != nil {
		t.Fatal(err)
	}
	if serr := idx.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}
	// Simulate the crash debris: a half-written entry and manifest.
	for _, name := range []string{"0123456789abcdef0123456789abcdef.rrs.tmp-42", "MANIFEST.json.tmp-7"} {
		if werr := os.WriteFile(filepath.Join(dir, name), []byte("partial garbage"), 0o644); werr != nil {
			t.Fatal(werr)
		}
	}
	fresh := server.NewIndex(0)
	n, err := fresh.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": g})
	if err != nil || n != 1 {
		t.Fatalf("restored %d err %v with tmp debris, want 1/nil", n, err)
	}
	got, err := fresh.Collection(snapReq(g, 300))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, col) {
		t.Fatal("restored collection differs after crash-debris load")
	}
	// The next snapshot prunes the debris.
	if serr := fresh.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}
	leftover, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Fatalf("SaveSnapshot left temp debris: %v", leftover)
	}
}

// --- server-level persistence ---

// stateConfig is a Config with persistence for the Flixster stand-in.
func stateConfig(d *comic.Dataset, dir string) server.Config {
	return server.Config{
		Datasets: map[string]*comic.Dataset{"Flixster": d},
		MaxK:     50,
		MaxRuns:  20000,
		StateDir: dir,
	}
}

const snapSolveBody = `{"dataset":"Flixster","k":5,"seedsB":[1,2],"fixedTheta":2000,"evalRuns":300,"seed":9}`

// uploadBody is a small two-item-complementary graph upload.
const snapUploadBody = `{"name":"mine","gap":{"qa0":0.6,"qab":0.9,"qb0":0.6,"qba":0.9},` +
	`"edgeList":"4 3\n0 1 0.9\n1 2 0.9\n2 3 0.9\n"}`

func TestServerRestoreParity(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	s1, err := server.New(stateConfig(d, dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s1, http.MethodPost, "/v1/graphs", snapUploadBody, nil); rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d: %s", rec.Code, rec.Body.String())
	}
	var before, beforeMine solveResp
	do(t, s1, http.MethodPost, "/v1/selfinfmax", snapSolveBody, &before)
	mineBody := `{"dataset":"mine","k":2,"fixedTheta":500,"evalRuns":200,"seed":3}`
	do(t, s1, http.MethodPost, "/v1/selfinfmax", mineBody, &beforeMine)
	preStats := s1.Index().Stats()
	if preStats.Misses == 0 {
		t.Fatal("cold server built nothing — test is vacuous")
	}
	if serr := s1.SaveState(); serr != nil {
		t.Fatal(serr)
	}
	s1.Close()

	// The restart: same config, same state dir.
	s2, err := server.New(stateConfig(d, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// The uploaded graph survived with its identity intact.
	var info struct {
		Name   string `json:"name"`
		Nodes  int    `json:"nodes"`
		Edges  int    `json:"edges"`
		Source string `json:"source"`
	}
	if rec := do(t, s2, http.MethodGet, "/v1/graphs/mine", "", &info); rec.Code != http.StatusOK {
		t.Fatalf("restored graph lookup = %d", rec.Code)
	}
	if info.Nodes != 4 || info.Edges != 3 || info.Source != "uploaded" {
		t.Fatalf("restored graph info %+v", info)
	}

	// Restore parity: byte-identical seed sets, and the first warm queries
	// build zero collections.
	var after, afterMine solveResp
	do(t, s2, http.MethodPost, "/v1/selfinfmax", snapSolveBody, &after)
	do(t, s2, http.MethodPost, "/v1/selfinfmax", mineBody, &afterMine)
	if !reflect.DeepEqual(after.Seeds, before.Seeds) || after.Objective != before.Objective {
		t.Fatalf("restored solve diverged: %v/%v vs %v/%v",
			after.Seeds, after.Objective, before.Seeds, before.Objective)
	}
	if !reflect.DeepEqual(afterMine.Seeds, beforeMine.Seeds) {
		t.Fatalf("restored uploaded-graph solve diverged: %v vs %v", afterMine.Seeds, beforeMine.Seeds)
	}
	st := s2.Index().Stats()
	if st.Misses != 0 {
		t.Fatalf("restored server built %d collections, want 0 (restores %d, rejects %d)",
			st.Misses, st.Restores, st.RestoreRejects)
	}
	if st.Hits == 0 || st.Restores == 0 {
		t.Fatalf("restored server served nothing warm: %+v", st)
	}
}

func TestServerRestoreAfterDelete(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	s1, err := server.New(stateConfig(d, dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s1, http.MethodPost, "/v1/graphs", snapUploadBody, nil); rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d", rec.Code)
	}
	var out solveResp
	do(t, s1, http.MethodPost, "/v1/selfinfmax", `{"dataset":"mine","k":2,"fixedTheta":500,"evalRuns":200,"seed":3}`, &out)
	if serr := s1.SaveState(); serr != nil {
		t.Fatal(serr)
	}
	if rec := do(t, s1, http.MethodDelete, "/v1/graphs/mine", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("delete = %d", rec.Code)
	}
	s1.Close()

	s2, err := server.New(stateConfig(d, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec := do(t, s2, http.MethodGet, "/v1/graphs/mine", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("deleted graph resurrected by restart: %d", rec.Code)
	}
	// The deleted graph's collections must not have been rehydrated: the
	// only solve taken before the snapshot was on "mine".
	if st := s2.Index().Stats(); st.Restores != 0 {
		t.Fatalf("restored %d collections of a deleted graph", st.Restores)
	}
}

func TestUploadPersistsWithoutExplicitSave(t *testing.T) {
	// Uploads are persisted as they arrive — a crash before any snapshot
	// (no SaveState) must not lose them; only the RR-index warmth is gone.
	d := testDataset(t)
	dir := t.TempDir()
	s1, err := server.New(stateConfig(d, dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s1, http.MethodPost, "/v1/graphs", snapUploadBody, nil); rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d", rec.Code)
	}
	s1.Close() // no SaveState: simulates a non-graceful exit for the index

	s2, err := server.New(stateConfig(d, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec := do(t, s2, http.MethodGet, "/v1/graphs/mine", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("upload lost without explicit save: %d", rec.Code)
	}
	var out solveResp
	if rec := do(t, s2, http.MethodPost, "/v1/selfinfmax",
		`{"dataset":"mine","k":2,"fixedTheta":500,"evalRuns":200,"seed":3}`, &out); rec.Code != http.StatusOK {
		t.Fatalf("solve on restored upload = %d", rec.Code)
	}
	if st := s2.Index().Stats(); st.Misses == 0 {
		t.Fatal("index should be cold (no snapshot was taken)")
	}
}

func TestServerStaleDatasetSnapshotRejected(t *testing.T) {
	// The same dataset name rebuilt with different content (another seed)
	// must not serve the old snapshot: the fingerprint mints a fresh cache
	// ID and the stale collections are rejected at load.
	dir := t.TempDir()
	s1, err := server.New(stateConfig(comic.FlixsterDataset(0.02, 1), dir))
	if err != nil {
		t.Fatal(err)
	}
	var out solveResp
	do(t, s1, http.MethodPost, "/v1/selfinfmax", snapSolveBody, &out)
	if serr := s1.SaveState(); serr != nil {
		t.Fatal(serr)
	}
	s1.Close()

	s2, err := server.New(stateConfig(comic.FlixsterDataset(0.02, 2), dir)) // different content
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Index().Stats()
	if st.Restores != 0 {
		t.Fatalf("restored %d collections for a changed graph", st.Restores)
	}
	if st.RestoreRejects == 0 {
		t.Fatal("stale snapshot entries were not counted as rejects")
	}
	var out2 solveResp
	if rec := do(t, s2, http.MethodPost, "/v1/selfinfmax", snapSolveBody, &out2); rec.Code != http.StatusOK {
		t.Fatalf("solve on re-fingerprinted dataset = %d", rec.Code)
	}
	if s2.Index().Stats().Misses == 0 {
		t.Fatal("changed graph must solve cold")
	}
}

func TestStatsExposeSnapshotCounters(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	s1, err := server.New(stateConfig(d, dir))
	if err != nil {
		t.Fatal(err)
	}
	var out solveResp
	do(t, s1, http.MethodPost, "/v1/selfinfmax", snapSolveBody, &out)
	if serr := s1.SaveState(); serr != nil {
		t.Fatal(serr)
	}
	s1.Close()
	s2, err := server.New(stateConfig(d, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var stats struct {
		Index map[string]any `json:"index"`
	}
	do(t, s2, http.MethodGet, "/v1/stats", "", &stats)
	for _, key := range []string{"snapshots", "snapshotErrors", "restores", "restoreRejects"} {
		if _, ok := stats.Index[key]; !ok {
			t.Fatalf("/v1/stats index block missing %q: %v", key, stats.Index)
		}
	}
	if got := stats.Index["restores"].(float64); got == 0 {
		t.Fatal("restores counter not surfaced")
	}
}

func TestSaveStateWithoutStateDir(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	defer s.Close()
	if err := s.SaveState(); err == nil {
		t.Fatal("SaveState without StateDir must error")
	}
}

// TestServeListenerSnapshotOnShutdown pins the snapshot-on-SIGTERM path:
// a graceful shutdown (context cancel, what the comic-serve signal handler
// triggers) persists the index, and the next boot answers the same query
// without building anything.
func TestServeListenerSnapshotOnShutdown(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	cfg := stateConfig(d, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go func() { errc <- server.ServeListener(ctx, l, cfg) }()

	var before solveResp
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Post("http://"+addr+"/v1/selfinfmax", "application/json",
			strings.NewReader(snapSolveBody))
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve = %d: %s", resp.StatusCode, body)
	}
	if uerr := json.Unmarshal(body, &before); uerr != nil {
		t.Fatal(uerr)
	}
	cancel() // the SIGTERM
	if serr := <-errc; serr != nil {
		t.Fatalf("graceful shutdown returned %v", serr)
	}

	s2, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var after solveResp
	do(t, s2, http.MethodPost, "/v1/selfinfmax", snapSolveBody, &after)
	if !reflect.DeepEqual(after.Seeds, before.Seeds) {
		t.Fatalf("post-restart seeds %v != pre-shutdown %v", after.Seeds, before.Seeds)
	}
	if st := s2.Index().Stats(); st.Misses != 0 || st.Restores == 0 {
		t.Fatalf("shutdown snapshot not restored: %+v", st)
	}
}

func TestPeriodicSnapshotLoop(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	cfg := stateConfig(d, dir)
	cfg.SnapshotInterval = 10 * time.Millisecond
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out solveResp
	do(t, s, http.MethodPost, "/v1/selfinfmax", snapSolveBody, &out)
	deadline := time.Now().Add(5 * time.Second)
	for s.Index().Stats().Snapshots == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic loop never snapshotted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close() // must stop the loop (and not hang)

	s2, err := server.New(stateConfig(d, dir)) // interval not needed to restore
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Index().Stats(); st.Restores == 0 {
		t.Fatalf("periodic snapshot not restorable: %+v", st)
	}
}
