package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"comic"
	"comic/internal/sandwich"
	"comic/internal/server"
)

// testDataset is the Flixster stand-in at a laptop-friendly scale; its
// learned GAPs are mutually complementary, the solvers' input domain.
func testDataset(tb testing.TB) *comic.Dataset {
	tb.Helper()
	return comic.FlixsterDataset(0.02, 1)
}

func newTestServer(tb testing.TB, d *comic.Dataset) *server.Server {
	tb.Helper()
	s, err := server.New(server.Config{
		Datasets: map[string]*comic.Dataset{"Flixster": d},
		MaxK:     50,
		MaxRuns:  20000,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// do performs one request and decodes the JSON response into out.
func do(tb testing.TB, h http.Handler, method, path, body string, out any) *httptest.ResponseRecorder {
	tb.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code >= 200 && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			tb.Fatalf("bad JSON response %q: %v", rec.Body.String(), err)
		}
	}
	return rec
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	var got struct {
		Status   string   `json:"status"`
		Datasets []string `json:"datasets"`
	}
	rec := do(t, s, http.MethodGet, "/healthz", "", &got)
	if rec.Code != http.StatusOK || got.Status != "ok" {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	if len(got.Datasets) != 1 || got.Datasets[0] != "Flixster" {
		t.Fatalf("datasets = %v", got.Datasets)
	}
	if rec := do(t, s, http.MethodPost, "/healthz", "{}", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", rec.Code)
	}
}

func TestSpreadHandler(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	body := `{"dataset":"Flixster","seedsA":[0,1],"seedsB":[2],"runs":500,"seed":7}`
	var r1, r2 struct {
		MeanA float64 `json:"meanA"`
		MeanB float64 `json:"meanB"`
		Runs  int     `json:"runs"`
		Seed  uint64  `json:"seed"`
	}
	if rec := do(t, s, http.MethodPost, "/v1/spread", body, &r1); rec.Code != http.StatusOK {
		t.Fatalf("spread = %d %q", rec.Code, rec.Body.String())
	}
	if r1.Runs != 500 || r1.Seed != 7 || r1.MeanA <= 0 {
		t.Fatalf("spread response = %+v", r1)
	}
	do(t, s, http.MethodPost, "/v1/spread", body, &r2)
	if r1 != r2 {
		t.Fatalf("repeated spread queries differ: %+v vs %+v", r1, r2)
	}
}

func TestBoostHandler(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	var got struct {
		Boost float64 `json:"boost"`
		Runs  int     `json:"runs"`
	}
	body := `{"dataset":"Flixster","seedsA":[0,1],"seedsB":[2,3],"runs":500,"seed":7}`
	if rec := do(t, s, http.MethodPost, "/v1/boost", body, &got); rec.Code != http.StatusOK {
		t.Fatalf("boost = %d %q", rec.Code, rec.Body.String())
	}
	if got.Runs != 500 {
		t.Fatalf("boost response = %+v", got)
	}
	rec := do(t, s, http.MethodPost, "/v1/boost", `{"dataset":"Flixster","seedsA":[0]}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("boost without seedsB = %d, want 400", rec.Code)
	}
}

func TestRequestValidation(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad json", "/v1/spread", `{`, http.StatusBadRequest},
		{"unknown field", "/v1/spread", `{"dataset":"Flixster","bogus":1}`, http.StatusBadRequest},
		{"unknown dataset", "/v1/spread", `{"dataset":"nope"}`, http.StatusNotFound},
		{"seed out of range", "/v1/spread", `{"dataset":"Flixster","seedsA":[999999]}`, http.StatusBadRequest},
		{"negative seed id", "/v1/spread", `{"dataset":"Flixster","seedsA":[-1]}`, http.StatusBadRequest},
		{"runs over limit", "/v1/spread", `{"dataset":"Flixster","runs":999999}`, http.StatusBadRequest},
		{"bad gap", "/v1/spread", `{"dataset":"Flixster","gap":{"qa0":2,"qab":1,"qb0":0,"qba":0}}`, http.StatusBadRequest},
		{"missing k", "/v1/selfinfmax", `{"dataset":"Flixster"}`, http.StatusBadRequest},
		{"k over limit", "/v1/selfinfmax", `{"dataset":"Flixster","k":5000}`, http.StatusBadRequest},
		{"self with seedsA", "/v1/selfinfmax", `{"dataset":"Flixster","k":2,"seedsA":[1]}`, http.StatusBadRequest},
		{"comp with seedsB", "/v1/compinfmax", `{"dataset":"Flixster","k":2,"seedsB":[1]}`, http.StatusBadRequest},
		{"theta over limit", "/v1/selfinfmax", `{"dataset":"Flixster","k":2,"fixedTheta":99999999}`, http.StatusBadRequest},
		{"evalRuns over limit", "/v1/selfinfmax", `{"dataset":"Flixster","k":2,"evalRuns":999999}`, http.StatusBadRequest},
		{"greedyRuns over limit", "/v1/selfinfmax", `{"dataset":"Flixster","k":2,"greedyRuns":999999}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, http.MethodPost, tc.path, tc.body, nil)
			if rec.Code != tc.want {
				t.Fatalf("%s %s = %d, want %d (%s)", tc.path, tc.body, rec.Code, tc.want, rec.Body.String())
			}
			decodeEnvelope(t, rec)
		})
	}
}

// TestSolveRejectsKAboveN pins the k ≤ n half of the k validation: MaxK
// alone used to gate k, so a small graph with k > N() slipped through to
// the θ machinery (where ln C(n,k) degenerates to 0) and seed selection
// was asked for more distinct seeds than nodes exist.
func TestSolveRejectsKAboveN(t *testing.T) {
	d := testDataset(t)
	n := d.Graph.N()
	s, err := server.New(server.Config{
		Datasets: map[string]*comic.Dataset{"Flixster": d},
		MaxK:     10 * n, // operator cap far above the graph size
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	for _, path := range []string{"/v1/selfinfmax", "/v1/compinfmax"} {
		body := fmt.Sprintf(`{"dataset":"Flixster","k":%d,"fixedTheta":200,"evalRuns":50}`, n+1)
		rec := do(t, s, http.MethodPost, path, body, nil)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s with k=n+1 = %d, want 400 (%s)", path, rec.Code, rec.Body.String())
		}
		if e := decodeEnvelope(t, rec); !strings.Contains(e.Message, "k must be in [1, min(") {
			t.Fatalf("%s error = %q, want a min(maxK, n) bound message", path, rec.Body.String())
		}
	}
	// k = n stays accepted: the bound is inclusive.
	body := fmt.Sprintf(`{"dataset":"Flixster","k":%d,"fixedTheta":200,"evalRuns":50}`, n)
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", body, nil); rec.Code != http.StatusOK {
		t.Fatalf("k=n solve = %d, want 200 (%s)", rec.Code, rec.Body.String())
	}
}

type solveResp struct {
	Seeds      []int32 `json:"seeds"`
	Objective  float64 `json:"objective"`
	Chosen     string  `json:"chosen"`
	Candidates []struct {
		Name  string `json:"name"`
		Theta int    `json:"theta"`
	} `json:"candidates"`
}

// TestSelfInfMaxParityAndWarmHits is the serving layer's core contract: a
// query answered from the warm RR-set index returns exactly the seed set
// the offline solver (what cmd/comic-seeds runs) computes for the same
// master seed, and the repeat query is answered entirely from cache.
func TestSelfInfMaxParityAndWarmHits(t *testing.T) {
	d := testDataset(t)
	s := newTestServer(t, d)
	seedsB := []int32{1, 2, 3}
	body := `{"dataset":"Flixster","k":5,"seedsB":[1,2,3],"fixedTheta":2000,"evalRuns":500,"seed":7}`

	var cold, warm solveResp
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", body, &cold); rec.Code != http.StatusOK {
		t.Fatalf("cold solve = %d %q", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", body, &warm); rec.Code != http.StatusOK {
		t.Fatalf("warm solve = %d %q", rec.Code, rec.Body.String())
	}
	if !reflect.DeepEqual(cold.Seeds, warm.Seeds) || cold.Objective != warm.Objective {
		t.Fatalf("warm response differs from cold: %+v vs %+v", warm, cold)
	}

	// Offline path, as cmd/comic-seeds invokes it.
	offline, err := comic.SelfInfMax(d.Graph, d.GAP, seedsB, 5, comic.Options{
		FixedTheta: 2000, EvalRuns: 500, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(offline.Seeds, warm.Seeds) {
		t.Fatalf("warm server seeds %v != offline solver seeds %v", warm.Seeds, offline.Seeds)
	}
	if offline.Objective != warm.Objective || offline.Chosen != warm.Chosen {
		t.Fatalf("server (%v, %s) != offline (%v, %s)",
			warm.Objective, warm.Chosen, offline.Objective, offline.Chosen)
	}

	// The Flixster GAPs are not B-indifferent, so one solve needs the
	// lower and upper bound collections: 2 misses cold, 2 hits warm.
	st := s.Index().Stats()
	if st.Misses != 2 || st.Hits != 2 {
		t.Fatalf("index stats = %+v, want 2 misses / 2 hits", st)
	}
}

func TestCompInfMaxDeterminism(t *testing.T) {
	d := testDataset(t)
	s := newTestServer(t, d)
	body := `{"dataset":"Flixster","k":3,"seedsA":[0,1],"fixedTheta":1500,"evalRuns":400,"seed":11}`
	var r1, r2 solveResp
	if rec := do(t, s, http.MethodPost, "/v1/compinfmax", body, &r1); rec.Code != http.StatusOK {
		t.Fatalf("compinfmax = %d %q", rec.Code, rec.Body.String())
	}
	do(t, s, http.MethodPost, "/v1/compinfmax", body, &r2)
	if !reflect.DeepEqual(r1.Seeds, r2.Seeds) {
		t.Fatalf("repeated compinfmax differs: %v vs %v", r1.Seeds, r2.Seeds)
	}
	offline, err := comic.CompInfMax(d.Graph, d.GAP, []int32{0, 1}, 3, comic.Options{
		FixedTheta: 1500, EvalRuns: 400, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(offline.Seeds, r2.Seeds) {
		t.Fatalf("warm server seeds %v != offline solver seeds %v", r2.Seeds, offline.Seeds)
	}
	if st := s.Index().Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("index stats = %+v, want 1 miss / 1 hit", st)
	}
}

func TestSolveHonorsExplicitSeedZero(t *testing.T) {
	// An explicit "seed": 0 is a legitimate master seed: it must round-trip
	// in the response and drive the solve, exactly as /v1/spread treats it —
	// not be silently rewritten to the default 1.
	d := testDataset(t)
	s := newTestServer(t, d)
	type seeded struct {
		solveResp
		Seed uint64 `json:"seed"`
	}
	post := func(body string) seeded {
		var got seeded
		if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", body, &got); rec.Code != http.StatusOK {
			t.Fatalf("solve = %d %q", rec.Code, rec.Body.String())
		}
		return got
	}
	zero := post(`{"dataset":"Flixster","k":3,"seedsB":[1],"fixedTheta":1500,"evalRuns":300,"seed":0}`)
	if zero.Seed != 0 {
		t.Fatalf("explicit seed 0 came back as %d", zero.Seed)
	}
	// Seed 0 must actually drive the solve: the response must match the
	// solver invoked directly with master seed 0. (The comic.Options facade
	// treats 0 as "unset", so go through sandwich.Config, which doesn't.)
	cfg := sandwich.NewConfig(3)
	cfg.TIM.FixedTheta = 1500
	cfg.TIM.MaxTheta = 2_000_000
	cfg.EvalRuns = 300
	cfg.Seed = 0
	offline, err := sandwich.SolveSelfInfMax(d.Graph, d.GAP, []int32{1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(offline.Seeds, zero.Seeds) || offline.Objective != zero.Objective {
		t.Fatalf("seed-0 server solve %+v != seed-0 direct solve (%v, %v)",
			zero.solveResp, offline.Seeds, offline.Objective)
	}

	one := post(`{"dataset":"Flixster","k":3,"seedsB":[1],"fixedTheta":1500,"evalRuns":300,"seed":1}`)
	if one.Seed != 1 {
		t.Fatalf("seed 1 came back as %d", one.Seed)
	}
	absent := post(`{"dataset":"Flixster","k":3,"seedsB":[1],"fixedTheta":1500,"evalRuns":300}`)
	if absent.Seed != 1 {
		t.Fatalf("absent seed defaulted to %d, want 1", absent.Seed)
	}
	if !reflect.DeepEqual(absent.Seeds, one.Seeds) || absent.Objective != one.Objective {
		t.Fatalf("absent-seed solve %+v != explicit seed-1 solve %+v", absent.solveResp, one.solveResp)
	}
	// Different master seeds draw different RR-set collections; the index
	// must key them apart (4 distinct misses: 0 and 1, lower+upper each).
	if st := s.Index().Stats(); st.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (seed 0 and seed 1 keyed separately)", st.Misses)
	}
}

func TestServerMaxThetaCapsDerivedTheta(t *testing.T) {
	// The operator's MaxTheta must bound the KPT-derived theta path too,
	// not only requests that name a budget explicitly.
	d := testDataset(t)
	s, err := server.New(server.Config{
		Datasets: map[string]*comic.Dataset{"Flixster": d},
		MaxTheta: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Candidates []struct {
			Theta int `json:"theta"`
		} `json:"candidates"`
	}
	rec := do(t, s, http.MethodPost, "/v1/selfinfmax",
		`{"dataset":"Flixster","k":3,"seedsB":[1],"evalRuns":100,"seed":4}`, &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve = %d %s", rec.Code, rec.Body.String())
	}
	if len(got.Candidates) == 0 {
		t.Fatal("no candidates in response")
	}
	for _, c := range got.Candidates {
		if c.Theta > 150 {
			t.Fatalf("candidate theta = %d exceeds the server's MaxTheta cap 150", c.Theta)
		}
	}
}

// TestStatsEndpoint pins the accepted-vs-errors counter contract: a
// request is counted under its endpoint only once it passes validation;
// rejected requests count once, under "errors" — never both, and never as
// served traffic. (They used to increment before validation, so every
// rejection inflated its endpoint's counter and "errors" simultaneously.)
func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	do(t, s, http.MethodPost, "/v1/spread", `{"dataset":"Flixster","seedsA":[0],"runs":100}`, nil)
	do(t, s, http.MethodPost, "/v1/selfinfmax", `{"dataset":"Flixster","k":2,"fixedTheta":500,"evalRuns":100}`, nil)
	// Three rejections at different validation stages: unknown dataset,
	// bad k, out-of-range seed id.
	do(t, s, http.MethodPost, "/v1/spread", `{"dataset":"nope"}`, nil)
	do(t, s, http.MethodPost, "/v1/selfinfmax", `{"dataset":"Flixster","k":0}`, nil)
	do(t, s, http.MethodPost, "/v1/boost", `{"dataset":"Flixster","seedsA":[999999],"seedsB":[1]}`, nil)

	var st struct {
		Index    server.IndexStats `json:"index"`
		Requests map[string]int64  `json:"requests"`
		Datasets []struct {
			Name  string `json:"name"`
			Nodes int    `json:"nodes"`
		} `json:"datasets"`
	}
	if rec := do(t, s, http.MethodGet, "/v1/stats", "", &st); rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	want := map[string]int64{"spread": 1, "selfinfmax": 1, "boost": 0, "errors": 3}
	for k, v := range want {
		if st.Requests[k] != v {
			t.Fatalf("requests[%q] = %d, want %d (all: %v)", k, st.Requests[k], v, st.Requests)
		}
	}
	if st.Index.Misses == 0 {
		t.Fatalf("index stats empty after a solve: %+v", st.Index)
	}
	if len(st.Datasets) != 1 || st.Datasets[0].Name != "Flixster" || st.Datasets[0].Nodes == 0 {
		t.Fatalf("datasets = %+v", st.Datasets)
	}
}

func TestNewRejectsEmptyConfig(t *testing.T) {
	if _, err := server.New(server.Config{}); err == nil {
		t.Fatal("New accepted a config with no datasets")
	}
	if _, err := server.New(server.Config{Datasets: map[string]*comic.Dataset{"x": nil}}); err == nil {
		t.Fatal("New accepted a nil dataset")
	}
}

// TestServeGracefulShutdown exercises the Serve lifecycle end to end on a
// real listener.
func TestServeGracefulShutdown(t *testing.T) {
	d := testDataset(t)
	cfg := server.Config{Datasets: map[string]*comic.Dataset{"Flixster": d}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go func() { errc <- server.ServeListener(ctx, l, cfg) }()

	// Wait for the listener, then probe /healthz.
	var ok bool
	for i := 0; i < 100 && !ok; i++ {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
		if !ok {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatal("server never became healthy")
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
}
