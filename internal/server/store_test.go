package server_test

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"comic/internal/rrset"
	"comic/internal/server"
)

func putString(t *testing.T, st server.SnapshotStore, name, body string) {
	t.Helper()
	if err := st.Put(name, func(w io.Writer) error {
		_, err := io.WriteString(w, body)
		return err
	}); err != nil {
		t.Fatalf("Put(%q): %v", name, err)
	}
}

func getString(t *testing.T, st server.SnapshotStore, name string) string {
	t.Helper()
	rc, err := st.Get(name)
	if err != nil {
		t.Fatalf("Get(%q): %v", name, err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestDirStoreCRUD(t *testing.T) {
	st, err := server.NewDirStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	if pingErr := st.Ping(); pingErr != nil {
		t.Fatalf("Ping on a fresh store: %v", pingErr)
	}

	putString(t, st, "graphs/ab/one.rrs", "hello")
	putString(t, st, "graphs/ab/two.rrs", "world")
	putString(t, st, "graphs/cd/one.rrs", "other prefix")
	if got := getString(t, st, "graphs/ab/one.rrs"); got != "hello" {
		t.Fatalf("Get = %q", got)
	}
	// Put replaces atomically.
	putString(t, st, "graphs/ab/one.rrs", "replaced")
	if got := getString(t, st, "graphs/ab/one.rrs"); got != "replaced" {
		t.Fatalf("Get after replace = %q", got)
	}

	names, err := st.List("graphs/ab")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"graphs/ab/one.rrs", "graphs/ab/two.rrs"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("List = %v, want %v", names, want)
	}
	if names, err := st.List("graphs/absent"); err != nil || names != nil {
		t.Fatalf("List(absent) = %v, %v; want nil, nil", names, err)
	}

	if _, err := st.Get("graphs/ab/absent.rrs"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get(absent) = %v, want fs.ErrNotExist", err)
	}
	if err := st.Delete("graphs/ab/one.rrs"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("graphs/ab/one.rrs"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get after Delete = %v, want fs.ErrNotExist", err)
	}
	if err := st.Delete("graphs/ab/one.rrs"); err != nil {
		t.Fatalf("Delete(absent) = %v, want nil", err)
	}
}

func TestDirStoreRejectsTraversal(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	st, err := server.NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{"", "/abs", "trailing/", "a//b", "a/./b", "../escape", "a/../../b", "."}
	for _, name := range bad {
		if err := st.Put(name, func(io.Writer) error { return nil }); err == nil {
			t.Errorf("Put(%q) accepted a traversal-shaped name", name)
		}
		if _, err := st.Get(name); err == nil {
			t.Errorf("Get(%q) accepted a traversal-shaped name", name)
		}
		if err := st.Delete(name); err == nil {
			t.Errorf("Delete(%q) accepted a traversal-shaped name", name)
		}
	}
	// Nothing escaped the root.
	outside := filepath.Join(filepath.Dir(root), "escape")
	if _, err := os.Stat(outside); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("traversal name created %s", outside)
	}
}

func TestPublishAdoptRoundTrip(t *testing.T) {
	g := snapGraph(t)
	st, err := server.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	idx := server.NewIndex(0)
	reqs := []rrset.CollectionRequest{snapReq(g, 300), snapReq(g, 500)}
	want := make([]*rrset.Collection, len(reqs))
	for i, req := range reqs {
		col, buildErr := idx.Collection(req)
		if buildErr != nil {
			t.Fatal(buildErr)
		}
		want[i] = col
	}

	n, err := idx.PublishGraph(st, "snap#1")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("published %d entries, want 2", n)
	}
	// Republishing is idempotent: deterministic collections mean existing
	// entry files are already byte-correct and are not rewritten.
	if again, repubErr := idx.PublishGraph(st, "snap#1"); repubErr != nil || again != 2 {
		t.Fatalf("republish = %d, %v; want 2, nil", again, repubErr)
	}

	fresh := server.NewIndex(0)
	adopted, err := fresh.AdoptGraph(st, "snap#1", g)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 2 || fresh.Len() != 2 {
		t.Fatalf("adopted %d entries, Len %d, want 2", adopted, fresh.Len())
	}
	if stats := fresh.Stats(); stats.Restores != 2 || stats.RestoreRejects != 0 {
		t.Fatalf("adopt stats %+v", stats)
	}
	// The adopted entries answer as hits with collections equal to the
	// publisher's — the whole point: warm state moved, nothing rebuilt.
	for i, req := range reqs {
		col, err := fresh.Collection(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(col, want[i]) {
			t.Fatalf("adopted collection %d differs from the published one", i)
		}
	}
	if stats := fresh.Stats(); stats.Hits != 2 || stats.Misses != 0 {
		t.Fatalf("after adopted queries: hits %d misses %d, want 2/0", stats.Hits, stats.Misses)
	}

	// Re-adoption skips the already-resident entries without rejects.
	if adopted, err := fresh.AdoptGraph(st, "snap#1", g); err != nil || adopted != 0 {
		t.Fatalf("re-adopt = %d, %v; want 0, nil", adopted, err)
	}
	if stats := fresh.Stats(); stats.RestoreRejects != 0 {
		t.Fatalf("re-adopt counted %d rejects", stats.RestoreRejects)
	}
}

func TestAdoptGraphStaleGenerationFenced(t *testing.T) {
	g := snapGraph(t)
	st, err := server.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	idx := server.NewIndex(0)
	if _, buildErr := idx.Collection(snapReq(g, 300)); buildErr != nil {
		t.Fatal(buildErr)
	}
	if n, err := idx.PublishGraph(st, "snap#1"); err != nil || n != 1 {
		t.Fatalf("publish = %d, %v", n, err)
	}

	// The published snapshot belongs to version "snap#1". A node serving a
	// newer generation of the same graph adopts under its own versioned ID
	// and must find nothing: stale warm state is fenced by the version
	// prefix, never served.
	fresh := server.NewIndex(0)
	if adopted, err := fresh.AdoptGraph(st, "snap#2", g); err != nil || adopted != 0 {
		t.Fatalf("adopt of unpublished version = %d, %v; want 0, nil", adopted, err)
	}
	if fresh.Len() != 0 {
		t.Fatalf("stale-version adopt left %d resident entries", fresh.Len())
	}
}

func TestAdoptGraphRejectsForeignManifest(t *testing.T) {
	g := snapGraph(t)
	st, err := server.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	idx := server.NewIndex(0)
	if _, buildErr := idx.Collection(snapReq(g, 300)); buildErr != nil {
		t.Fatal(buildErr)
	}
	if _, pubErr := idx.PublishGraph(st, "snap#1"); pubErr != nil {
		t.Fatal(pubErr)
	}

	// Copy version snap#1's published objects under snap#2's prefix — a
	// forged (or misplaced) manifest whose recorded GraphID disagrees with
	// the prefix it sits under. Adoption must refuse it wholesale: the
	// manifest names snap#1, the adopter serves snap#2.
	root := st.Root()
	des, err := os.ReadDir(filepath.Join(root, "graphs"))
	if err != nil || len(des) != 1 {
		t.Fatalf("expected exactly one version prefix, got %v, %v", des, err)
	}
	src := des[0].Name()
	sum := sha256.Sum256([]byte("snap#2"))
	dst := hex.EncodeToString(sum[:16]) // the store's documented prefix digest
	srcNames, err := st.List("graphs/" + src)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range srcNames {
		body := getString(t, st, name)
		putString(t, st, "graphs/"+dst+"/"+strings.TrimPrefix(name, "graphs/"+src+"/"), body)
	}

	fresh := server.NewIndex(0)
	adopted, err := fresh.AdoptGraph(st, "snap#2", g)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 0 || fresh.Len() != 0 {
		t.Fatalf("foreign manifest adopted %d entries", adopted)
	}
	if stats := fresh.Stats(); stats.RestoreRejects != 1 {
		t.Fatalf("foreign manifest counted %d rejects, want 1", stats.RestoreRejects)
	}
}

func TestAdoptGraphToleratesTornManifest(t *testing.T) {
	g := snapGraph(t)
	st, err := server.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	idx := server.NewIndex(0)
	if _, buildErr := idx.Collection(snapReq(g, 300)); buildErr != nil {
		t.Fatal(buildErr)
	}
	if _, pubErr := idx.PublishGraph(st, "snap#1"); pubErr != nil {
		t.Fatal(pubErr)
	}
	root := st.Root()
	des, err := os.ReadDir(filepath.Join(root, "graphs"))
	if err != nil || len(des) != 1 {
		t.Fatalf("expected exactly one version prefix, got %v, %v", des, err)
	}
	putString(t, st, "graphs/"+des[0].Name()+"/MANIFEST.json", "{ torn")

	fresh := server.NewIndex(0)
	adopted, err := fresh.AdoptGraph(st, "snap#1", g)
	if err != nil {
		t.Fatalf("a torn manifest must forfeit the adoption, not error: %v", err)
	}
	if adopted != 0 {
		t.Fatalf("torn manifest adopted %d entries", adopted)
	}
	if stats := fresh.Stats(); stats.RestoreRejects != 1 {
		t.Fatalf("torn manifest counted %d rejects, want 1", stats.RestoreRejects)
	}
}

func TestPublishGraphEmptyRetractsManifest(t *testing.T) {
	g := snapGraph(t)
	st, err := server.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	idx := server.NewIndex(0)
	if _, buildErr := idx.Collection(snapReq(g, 300)); buildErr != nil {
		t.Fatal(buildErr)
	}
	if n, err := idx.PublishGraph(st, "snap#1"); err != nil || n != 1 {
		t.Fatalf("publish = %d, %v", n, err)
	}
	// A publisher with nothing resident for the version retracts the
	// manifest so adopters see an unpublished graph, not stale entries.
	empty := server.NewIndex(0)
	if n, err := empty.PublishGraph(st, "snap#1"); err != nil || n != 0 {
		t.Fatalf("empty publish = %d, %v; want 0, nil", n, err)
	}
	fresh := server.NewIndex(0)
	if adopted, err := fresh.AdoptGraph(st, "snap#1", g); err != nil || adopted != 0 {
		t.Fatalf("adopt after retraction = %d, %v; want 0, nil", adopted, err)
	}
}
