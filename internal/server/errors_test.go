package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"comic"
	"comic/internal/server"
)

// errBody and errEnvelope mirror the structured error wire form in tests.
type errBody struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details"`
}

type errEnvelope struct {
	Error errBody `json:"error"`
}

// decodeEnvelope asserts the recorder body is a well-formed error envelope
// and returns the inner body.
func decodeEnvelope(tb testing.TB, rec *httptest.ResponseRecorder) errBody {
	tb.Helper()
	var e errEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		tb.Fatalf("error body %q is not JSON: %v", rec.Body.String(), err)
	}
	if e.Error.Code == "" || e.Error.Message == "" {
		tb.Fatalf("error body %q is not the {\"error\":{\"code\",\"message\"}} envelope", rec.Body.String())
	}
	return e.Error
}

// TestErrorEnvelopeConformance sweeps (endpoint, failure) pairs across the
// whole v1 surface and pins each to its HTTP status and stable error code:
// every non-2xx response is the structured envelope, method misses carry
// an Allow header, and the codes match the docs/api.md catalog.
func TestErrorEnvelopeConformance(t *testing.T) {
	d := testDataset(t)
	s, err := server.New(server.Config{
		Datasets: map[string]*comic.Dataset{"Flixster": d},
		MaxK:     50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
		wantAllow                string // non-empty: the Allow header on a 405
	}{
		{"healthz wrong method", http.MethodPost, "/healthz", "", 405, "method_not_allowed", "GET"},
		{"stats wrong method", http.MethodDelete, "/v1/stats", "", 405, "method_not_allowed", "GET"},
		{"spread wrong method", http.MethodGet, "/v1/spread", "", 405, "method_not_allowed", "POST"},
		{"boost wrong method", http.MethodPut, "/v1/boost", "", 405, "method_not_allowed", "POST"},
		{"selfinfmax wrong method", http.MethodGet, "/v1/selfinfmax", "", 405, "method_not_allowed", "POST"},
		{"compinfmax wrong method", http.MethodGet, "/v1/compinfmax", "", 405, "method_not_allowed", "POST"},
		{"batch wrong method", http.MethodGet, "/v1/batch", "", 405, "method_not_allowed", "POST"},
		{"jobs wrong method", http.MethodDelete, "/v1/jobs", "", 405, "method_not_allowed", "POST, GET"},
		{"job by id wrong method", http.MethodPost, "/v1/jobs/job-1", "", 405, "method_not_allowed", "GET, DELETE"},
		{"graphs wrong method", http.MethodDelete, "/v1/graphs", "", 405, "method_not_allowed", "POST, GET"},
		{"graph by name wrong method", http.MethodPost, "/v1/graphs/Flixster", "", 405, "method_not_allowed", "GET, DELETE"},
		{"edges wrong method", http.MethodPost, "/v1/graphs/Flixster/edges", "{}", 405, "method_not_allowed", "PATCH"},

		{"spread bad json", http.MethodPost, "/v1/spread", "{", 400, "invalid_argument", ""},
		{"spread unknown field", http.MethodPost, "/v1/spread", `{"dataset":"Flixster","bogus":1}`, 400, "invalid_argument", ""},
		{"spread unknown dataset", http.MethodPost, "/v1/spread", `{"dataset":"nope"}`, 404, "graph_not_found", ""},
		{"spread bad seeds", http.MethodPost, "/v1/spread", `{"dataset":"Flixster","seedsA":[-1]}`, 400, "invalid_argument", ""},
		{"boost missing seedsB", http.MethodPost, "/v1/boost", `{"dataset":"Flixster","seedsA":[0]}`, 400, "invalid_argument", ""},
		{"solve bad k", http.MethodPost, "/v1/selfinfmax", `{"dataset":"Flixster","k":0}`, 400, "invalid_argument", ""},
		{"solve unknown dataset", http.MethodPost, "/v1/compinfmax", `{"dataset":"nope","k":2}`, 404, "graph_not_found", ""},
		{"batch empty", http.MethodPost, "/v1/batch", `{"queries":[]}`, 400, "invalid_argument", ""},
		{"jobs empty", http.MethodPost, "/v1/jobs", `{"queries":[]}`, 400, "invalid_argument", ""},
		{"job not found", http.MethodGet, "/v1/jobs/job-999", "", 404, "job_not_found", ""},
		{"job delete not found", http.MethodDelete, "/v1/jobs/job-999", "", 404, "job_not_found", ""},
		{"graph not found", http.MethodGet, "/v1/graphs/nope", "", 404, "graph_not_found", ""},
		{"graph delete not found", http.MethodDelete, "/v1/graphs/nope", "", 404, "graph_not_found", ""},
		{"upload bad name", http.MethodPost, "/v1/graphs", `{"name":"","edgeList":"2 1\n0 1 0.5\n"}`, 400, "invalid_argument", ""},
		{"upload name taken", http.MethodPost, "/v1/graphs", `{"name":"Flixster","edgeList":"2 1\n0 1 0.5\n"}`, 409, "graph_conflict", ""},

		{"patch unknown graph", http.MethodPatch, "/v1/graphs/nope/edges",
			`{"updates":[{"op":"reweight","u":0,"v":1,"p":0.5}]}`, 404, "graph_not_found", ""},
		{"patch empty batch", http.MethodPatch, "/v1/graphs/Flixster/edges",
			`{"updates":[]}`, 400, "invalid_argument", ""},
		{"patch unknown op", http.MethodPatch, "/v1/graphs/Flixster/edges",
			`{"updates":[{"op":"frobnicate","u":0,"v":1}]}`, 400, "invalid_argument", ""},
		{"patch add without p", http.MethodPatch, "/v1/graphs/Flixster/edges",
			`{"updates":[{"op":"add","u":0,"v":1}]}`, 400, "invalid_argument", ""},
		{"patch remove with p", http.MethodPatch, "/v1/graphs/Flixster/edges",
			`{"updates":[{"op":"remove","u":0,"v":1,"p":0.5}]}`, 400, "invalid_argument", ""},
		{"patch stale generation", http.MethodPatch, "/v1/graphs/Flixster/edges",
			`{"updates":[{"op":"reweight","u":0,"v":1,"p":0.5}],"ifGeneration":7}`, 409, "graph_generation_conflict", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, tc.method, tc.path, tc.body, nil)
			if rec.Code != tc.wantStatus {
				t.Fatalf("%s %s = %d, want %d (%s)", tc.method, tc.path, rec.Code, tc.wantStatus, rec.Body.String())
			}
			e := decodeEnvelope(t, rec)
			if e.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q (%s)", e.Code, tc.wantCode, rec.Body.String())
			}
			if tc.wantAllow != "" {
				if got := rec.Header().Get("Allow"); got != tc.wantAllow {
					t.Fatalf("Allow = %q, want %q", got, tc.wantAllow)
				}
				allow, _ := e.Details["allow"].(string)
				if allow != tc.wantAllow {
					t.Fatalf("details.allow = %v, want %q", e.Details["allow"], tc.wantAllow)
				}
			}
		})
	}
}

// TestGenerationConflictDetails pins the structured context on the
// ifGeneration precondition failure: the conflicting generations are in
// details, so a client can resync without re-fetching the graph.
func TestGenerationConflictDetails(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)
	rec := do(t, s, http.MethodPatch, "/v1/graphs/Flixster/edges",
		`{"updates":[{"op":"reweight","u":0,"v":1,"p":0.5}],"ifGeneration":3}`, nil)
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale patch = %d, want 409 (%s)", rec.Code, rec.Body.String())
	}
	e := decodeEnvelope(t, rec)
	if e.Code != "graph_generation_conflict" {
		t.Fatalf("code = %q", e.Code)
	}
	if e.Details["generation"] != float64(0) || e.Details["ifGeneration"] != float64(3) {
		t.Fatalf("details = %v, want generation 0 / ifGeneration 3", e.Details)
	}
	if !strings.Contains(e.Message, "generation") {
		t.Fatalf("message %q does not mention the generation", e.Message)
	}
}
