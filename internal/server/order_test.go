package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"comic/internal/graph"
	"comic/internal/server"
)

// TestWarmPathBatchJobSingleParity pins the warm path end to end over HTTP:
// a k-sweep under a fixed θ shares one collection and one memoized CELF
// ordering across /v1/selfinfmax, /v1/batch and /v1/jobs, and every route
// returns byte-identical results for the same query. With the strict-Q+
// Flixster GAPs each solve needs the lower and upper bound collections, so
// the whole sweep costs exactly 2 collection builds and 2 ordering builds
// no matter how many k values or routes it spans.
func TestWarmPathBatchJobSingleParity(t *testing.T) {
	s := newTestServer(t, testDataset(t))
	t.Cleanup(s.Close)

	query := func(k int) string {
		return fmt.Sprintf(`{"dataset":"Flixster","k":%d,"seedsB":[1,2],"fixedTheta":2000,"evalRuns":300,"seed":5}`, k)
	}
	const kmax = 6

	// Singles, k ascending: first solve builds, the rest slice the memo.
	singles := make([]solveResp, kmax+1)
	for k := 1; k <= kmax; k++ {
		if rec := do(t, s, http.MethodPost, "/v1/selfinfmax", query(k), &singles[k]); rec.Code != http.StatusOK {
			t.Fatalf("k=%d solve = %d %q", k, rec.Code, rec.Body.String())
		}
	}

	st := s.Index().Stats()
	if st.Misses != 2 || st.OrderMisses != 2 {
		t.Fatalf("k-sweep stats = %d misses / %d orderMisses, want 2/2 (one collection pair, one ordering pair)",
			st.Misses, st.OrderMisses)
	}
	if st.OrderHits != 2*(kmax-1) {
		t.Fatalf("orderHits = %d, want %d (two bounds × %d warm solves)",
			st.OrderHits, 2*(kmax-1), kmax-1)
	}
	if st.OrderBytes <= 0 {
		t.Fatalf("orderBytes = %d after memoized sweep", st.OrderBytes)
	}

	// The same sweep through /v1/batch must be answered fully warm and
	// byte-identical per k.
	var ops []string
	for k := 1; k <= kmax; k++ {
		ops = append(ops, fmt.Sprintf(`{"op":"selfinfmax",%s`, query(k)[1:]))
	}
	wrapped := fmt.Sprintf(`{"queries":[%s]}`, join(ops, ","))
	var batch batchResp
	if rec := do(t, s, http.MethodPost, "/v1/batch", wrapped, &batch); rec.Code != http.StatusOK {
		t.Fatalf("batch = %d %q", rec.Code, rec.Body.String())
	}
	if batch.Succeeded != kmax {
		t.Fatalf("batch succeeded = %d, want %d", batch.Succeeded, kmax)
	}
	for i := 0; i < kmax; i++ {
		var got solveResp
		if err := json.Unmarshal(batch.Results[i].Result, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, singles[i+1]) {
			t.Fatalf("batch k=%d %+v != single %+v", i+1, got, singles[i+1])
		}
	}

	// And through /v1/jobs.
	var submitted jobStatusResp
	if rec := do(t, s, http.MethodPost, "/v1/jobs", wrapped, &submitted); rec.Code != http.StatusAccepted {
		t.Fatalf("job submit = %d %q", rec.Code, rec.Body.String())
	}
	finished := pollJob(t, s, submitted.ID)
	if finished.State != "done" || finished.Result == nil || finished.Result.Succeeded != kmax {
		t.Fatalf("job outcome = %+v", finished)
	}
	for i := 0; i < kmax; i++ {
		var got solveResp
		if err := json.Unmarshal(finished.Result.Results[i].Result, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, singles[i+1]) {
			t.Fatalf("job k=%d %+v != single %+v", i+1, got, singles[i+1])
		}
	}

	// Batch and job added zero builds of either kind.
	end := s.Index().Stats()
	if end.Misses != 2 || end.OrderMisses != 2 {
		t.Fatalf("after batch+job: %d misses / %d orderMisses, want still 2/2",
			end.Misses, end.OrderMisses)
	}

	// /v1/stats serves the order counters.
	var wire struct {
		Index struct {
			OrderHits   int64 `json:"orderHits"`
			OrderMisses int64 `json:"orderMisses"`
			OrderBytes  int64 `json:"orderBytes"`
		} `json:"index"`
	}
	if rec := do(t, s, http.MethodGet, "/v1/stats", "", &wire); rec.Code != http.StatusOK {
		t.Fatalf("stats = %d %q", rec.Code, rec.Body.String())
	}
	if wire.Index.OrderMisses != end.OrderMisses || wire.Index.OrderHits != end.OrderHits ||
		wire.Index.OrderBytes != end.OrderBytes {
		t.Fatalf("/v1/stats order counters %+v != index stats %+v", wire.Index, end)
	}
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// TestSnapshotPersistsSeedOrders: a save/load cycle must carry the memoized
// orderings across the restart — the first warm solve after a restore is an
// order hit, not a rebuild.
func TestSnapshotPersistsSeedOrders(t *testing.T) {
	g := snapGraph(t)
	dir := t.TempDir()

	idx := server.NewIndex(0)
	req := snapReq(g, 400)
	want, _, err := idx.SelectSeeds(req, g.N(), 5) // builds collection + order
	if err != nil {
		t.Fatal(err)
	}
	if serr := idx.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}

	restored := server.NewIndex(0)
	n, err := restored.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": g})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d collections, want 1", n)
	}
	if st := restored.Stats(); st.OrderBytes <= 0 {
		t.Fatalf("restore did not carry the seed order: %+v", st)
	}
	got, _, err := restored.SelectSeeds(req, g.N(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored selection %v != original %v", got, want)
	}
	st := restored.Stats()
	if st.OrderMisses != 0 || st.OrderHits != 1 {
		t.Fatalf("first post-restore selection: %d hits / %d misses, want 1/0 (restored order must serve it)",
			st.OrderHits, st.OrderMisses)
	}
}

// TestSnapshotRewritesOrderlessEntryOnce: an entry file saved before its
// ordering existed must be rewritten by the next save to include it — and
// only then; later saves reuse the file.
func TestSnapshotRewritesOrderlessEntryOnce(t *testing.T) {
	g := snapGraph(t)
	dir := t.TempDir()
	idx := server.NewIndex(0)
	req := snapReq(g, 300)

	if _, err := idx.Collection(req); err != nil { // collection only, no order yet
		t.Fatal(err)
	}
	if serr := idx.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}
	cold := server.NewIndex(0)
	if _, err := cold.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": g}); err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.OrderBytes != 0 {
		t.Fatalf("order restored from an order-less save: %+v", st)
	}

	if _, _, err := idx.SelectSeeds(req, g.N(), 5); err != nil { // memoize the ordering
		t.Fatal(err)
	}
	if serr := idx.SaveSnapshot(dir); serr != nil {
		t.Fatal(serr)
	}
	warm := server.NewIndex(0)
	if _, err := warm.LoadSnapshot(dir, map[string]*graph.Graph{"snap#1": g}); err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.OrderBytes <= 0 {
		t.Fatalf("second save did not rewrite the order-less entry: %+v", st)
	}
}
